"""CHITCHAT: the O(log n)-approximation algorithm (paper section 3.1).

The DISSEMINATION problem maps to SET-COVER: the ground set is the edge set
``E``; candidates are (a) singleton edges served directly at the hybrid cost
``c*(e) = min(rp(u), rc(v))`` and (b) hub-graphs, which cover their push
legs, pull legs, and cross-edges at the cost of the not-yet-paid legs.

The greedy SET-COVER step — "pick the candidate with minimum cost per newly
covered element" — cannot enumerate the exponentially many hub-graphs, so
Algorithm 1 uses an oracle: for every hub ``w``, the weighted
densest-subgraph peeling of :mod:`repro.core.densest` finds the best
sub-hub-graph of ``G(w)``; a priority queue keeps the per-hub champions.

Combined guarantee (Theorem 4): ``O(2 ln n) = O(ln n)``.

Lazy oracle re-evaluation
-------------------------
Algorithm 1 line 14 invalidates, after every selection, each hub whose
hub-graph contains a covered element — for a social graph that is the two
endpoints *plus every wedge intermediary*, so an eager implementation
re-oracles a near-quadratic number of hubs over a run.  This scheduler
applies the CELF trick instead, exploiting a monotonicity split:

* **covering elements only raises** a hub champion's cost per element (the
  same vertex weights buy less coverage), so a heap key computed before
  the covering event is still a valid *lower bound* — those hubs are
  merely marked dirty, and a dirty entry is re-oracled only when it
  reaches the heap top (a clean top entry is therefore the true global
  best);
* **paying a push/pull leg lowers** the owning hub-graph's vertex weight
  and can cheapen its champion below the stale key, so the (few) hubs
  incident to newly scheduled legs are refreshed eagerly.

Two further cuts avoid oracle work entirely: the bootstrap prices every
hub's trivial champion lower bound in one vectorized pass (no peeling) and
skips hubs that provably can never beat the singletons covering their own
elements; and lazy recomputes pass the cheapest competing candidate as an
``upper_bound`` so the oracle can abandon non-competitive hubs after an
``O(m)`` probe (:class:`~repro.core.densest.OracleCutoff`).  The lazy and
eager modes produce byte-identical schedules (property-tested); eager
remains available via ``lazy=False`` as the reference implementation.

Oracle modes
------------
The densest-subgraph oracle itself is pluggable (``oracle=``): the
default ``"peel"`` is the paper's factor-2 weighted peeling, ``"exact"``
the parametric max-flow oracle of :mod:`repro.flow`, and ``"auto"``
mixes them by hub-graph size.  Exact champions are true optima, which
strengthens the lazy split: the optimum is monotone non-decreasing under
coverage events, so a dirtied exact champion whose covered set the event
did not touch is *retained* as-is (no downgrade, no re-evaluation — see
``_invalidate``), and when a downgrade is needed the certified bound is
the optimum itself less a float margin rather than a factor-2
certificate — dirty hubs resurface only when genuinely competitive.
The exact oracle is a *warm session* by default (``warm=True``): each
per-hub flow problem persists across calls and repairs its previous
preflow instead of resetting, since coverage only ever shrinks a hub's
element set (see :class:`~repro.flow.exact_oracle.ExactOracle`).

Approximately-greedy mode (ε)
-----------------------------
``epsilon=`` relaxes the greedy selection in lazy mode: when the heap
top is a *dirty* hub — whose key is a certified lower bound on its true
champion cost — and some *clean* candidate (a singleton, or a clean hub
champion further down the heap) is priced within ``(1 + ε)`` of that
bound, the clean candidate is selected outright and the dirty hub's
re-evaluation is skipped (``stats.epsilon_accepts``).  Every candidate's
true cost is at least its key and the dirty top holds the minimum key,
so the accepted cost is at most ``(1 + ε)`` times the true step optimum
— the CELF++-style lever that trades a bounded per-step slack for
fewer oracle calls.  ``epsilon=0`` (the default) disables the
relaxation entirely and stays byte-identical to exact greedy
(property-tested on both backends and both oracles).

The scheduler runs on any :class:`~repro.graph.view.GraphView`.  With
``backend="auto"`` (the default) large dense-id graphs are frozen into a
:class:`~repro.graph.csr.CSRGraph` first; on that backend the singleton
prices and bootstrap bounds are computed in vectorized passes over the
edge arrays, and the oracle filters hub-graph elements with a dense
edge-id bitmask.  Both backends produce identical schedules
(property-tested).
"""

from __future__ import annotations

import heapq
import math

import numpy as np

from repro.core.baselines import hybrid_schedule
from repro.core.cost import hybrid_edge_cost, schedule_cost
from repro.core.densest import (
    DensestResult,
    OracleCutoff,
    ScheduleMirror,
    densest_subgraph,
)
from repro.core.hubgraph import HubGraph, build_hub_graph
from repro.core.tolerances import BATCH_K, EPS_ACCEPT_SLACK, OPT_BOUND_MARGIN
from repro.core.schedule import RequestSchedule
from repro.errors import ReproError
from repro.graph.csr import CSRGraph
from repro.graph.digraph import Edge, Node
from repro.flow.exact_oracle import (
    ExactOracle,
    MultiHubSession,
    use_exact,
    validate_oracle_mode,
)
from repro.graph.view import (
    GraphView,
    NeighborSetCache,
    affected_hubs,
    as_graph_view,
    edge_list,
    edge_ranks,
    node_ranks,
)
from repro.obs import trace
from repro.obs.metrics import MetricsRegistry, StatsView
from repro.workload.rates import Workload

#: Heap entry: (cost key, node rank tiebreak, hub, version, champion).
#: ``champion`` is ``None`` for unpriced entries (bootstrap bounds and
#: oracle cutoffs) — those hubs are in the dirty set and re-oracled when
#: they reach the heap top.
HubEntry = tuple[float, int, Node, int, "DensestResult | None"]

#: Sentinel returned by ``ChitchatScheduler._epsilon_accept`` when the
#: relaxation resolves the greedy step in favor of the best singleton.
_SINGLETON_WINS = object()


class ChitchatStats(StatsView):
    """Diagnostics accumulated during a CHITCHAT run.

    ``oracle_calls`` counts full densest-subgraph evaluations — peels and
    exact max-flow solves alike (cheap no-op calls on fully covered
    hub-graphs included, matching the eager accounting) — of which
    ``exact_oracle_calls`` went through the parametric max-flow oracle;
    ``oracle_early_exits`` counts bounded probes the oracle abandoned via
    its pre-evaluation lower bound; ``oracle_calls_saved`` is the number
    of full evaluations the eager invalidation rule would have run that
    the lazy dirty-hub heap never needed (0 in eager mode);
    ``hubs_pruned`` counts hubs the lazy bootstrap proved can never beat
    their own singletons; ``champions_retained`` counts coverage events
    whose hub kept its exact champion untouched because the covered edges
    missed the champion's covered set (exact oracle + lazy mode only —
    the peel's 2-approximate output cannot be retained);
    ``epsilon_accepts`` counts greedy steps the ``(1 + ε)`` relaxation
    resolved with a clean candidate instead of re-evaluating the dirty
    heap top (0 whenever ``epsilon=0``).

    The warm-session counters mirror the :class:`ExactOracle` session
    (all 0 under ``oracle="peel"``): ``warm_solves`` — exact solves that
    resumed the hub's previous preflow instead of resetting it;
    ``preflow_repairs`` — capacity decreases that had to cancel routed
    flow; ``flow_passes`` — total flow-solver work units (loop
    discharges / wave sweeps), the E15 warm-vs-cold benchmark metric.

    The batched-tier counters mirror the session's
    :class:`~repro.flow.batched_solve.FlowStats` (all 0 without the
    exact oracle, or with ``batch_k < 2``): ``kernel_invocations`` —
    flow-solver entries, sequential and arena alike (the E18 headline
    metric); ``batched_solves`` / ``batched_blocks`` — arena dispatches
    and the hub problems they carried (``blocks_per_batch`` is their
    ratio); ``batch_freeze_seconds`` / ``batch_discharge_seconds`` /
    ``batch_relabel_seconds`` — the batched tier's kernel time split
    (arena assembly / wave sweeps / exact-label BFS share);
    ``flow_solve_seconds`` — the sequential tier's solve wall;
    ``jit_compile_seconds`` — the process-wide one-off Numba warm-up
    when the jit kernel ran (excluded from every other timer).

    Since ISSUE 8 this is a :class:`~repro.obs.metrics.StatsView` over
    the scheduler's metrics registry: scheduler-phase counters live at
    the view's node, the warm-session counters under its ``oracle``
    child, and the flow/arena counters under ``oracle/flow`` — the same
    cells the session's :class:`~repro.flow.batched_solve.FlowStats`
    binds, so ``registry.snapshot()`` and these fields always agree.
    The field names, defaults, and arithmetic are unchanged.
    """

    _FIELDS = {
        "hub_selections": (("hub_selections",), "counter"),
        "singleton_selections": (("singleton_selections",), "counter"),
        "oracle_calls": (("oracle_calls",), "counter"),
        "exact_oracle_calls": (("exact_oracle_calls",), "counter"),
        "oracle_early_exits": (("oracle_early_exits",), "counter"),
        "oracle_calls_saved": (("oracle_calls_saved",), "counter"),
        "hubs_pruned": (("hubs_pruned",), "counter"),
        "champions_retained": (("champions_retained",), "counter"),
        "epsilon_accepts": (("epsilon_accepts",), "counter"),
        "warm_solves": (("oracle", "warm_solves"), "counter"),
        "preflow_repairs": (("oracle", "preflow_repairs"), "counter"),
        "flow_passes": (("oracle", "flow_passes"), "counter"),
        "kernel_invocations": (
            ("oracle", "flow", "kernel_invocations"),
            "counter",
        ),
        "batched_solves": (
            ("oracle", "flow", "arena", "batched_solves"),
            "counter",
        ),
        "batched_blocks": (
            ("oracle", "flow", "arena", "batched_blocks"),
            "counter",
        ),
        "batch_freeze_seconds": (
            ("oracle", "flow", "arena", "freeze_seconds"),
            "timer",
        ),
        "batch_discharge_seconds": (
            ("oracle", "flow", "arena", "discharge_seconds"),
            "timer",
        ),
        "batch_relabel_seconds": (
            ("oracle", "flow", "arena", "relabel_seconds"),
            "timer",
        ),
        "flow_solve_seconds": (("oracle", "flow", "solve_seconds"), "timer"),
        "jit_compile_seconds": (
            ("oracle", "flow", "jit_compile_seconds"),
            "timer",
        ),
        "edges_covered_by_hubs": (("edges_covered_by_hubs",), "counter"),
        "final_cost": (("final_cost",), "gauge"),
    }
    _LIST_FIELDS = ("selection_log",)

    @property
    def blocks_per_batch(self) -> float:
        """Mean hub problems per batched arena dispatch (0 when unused)."""
        if self.batched_solves == 0:
            return 0.0
        return self.batched_blocks / self.batched_solves


class ChitchatScheduler:
    """Stateful CHITCHAT runner (use :func:`chitchat_schedule` for one-shots).

    Parameters
    ----------
    graph, workload:
        The DISSEMINATION instance.  ``graph`` may be either adjacency
        backend.
    max_cross_edges:
        Optional per-hub cross-edge bound (the MapReduce ``b`` of section
        3.2), trading optimization opportunities for memory/time on dense
        hubs.
    record_log:
        When True, every greedy selection is appended to
        ``stats.selection_log`` as ``(kind, cost_per_element, covered)``.
    backend:
        ``"auto"`` (default) applies the CSR fast path above
        :data:`~repro.graph.view.CSR_FASTPATH_THRESHOLD` nodes; ``"csr"``
        and ``"dict"`` force a backend.
    lazy:
        When True (default) hubs invalidated by coverage-only events are
        re-oracled lazily via the CELF dirty-hub heap (see the module
        docstring); ``False`` restores the eager Algorithm 1 line 14
        refresh — identical schedules, far more oracle calls.
    oracle:
        ``"peel"`` (default) uses the factor-2 weighted peeling of
        :mod:`repro.core.densest`; ``"exact"`` the parametric max-flow
        oracle of :mod:`repro.flow`, whose champions are true optima —
        monotone under covering, so the lazy heap re-evaluates a dirty
        hub only when a covering event actually touched its champion;
        ``"auto"`` picks exact for hub-graphs up to
        :data:`~repro.flow.exact_oracle.EXACT_AUTO_MAX_ELEMENTS`
        elements and the peel beyond.
    epsilon:
        ``(1 + ε)`` relaxation of the greedy selection (lazy mode only):
        a dirty heap top whose certified lower-bound key is within
        ``(1 + ε)`` of a clean candidate's exact price is skipped
        instead of re-evaluated, and the clean candidate is selected —
        each accepted step costs at most ``(1 + ε)`` times the true
        step optimum.  ``0.0`` (default) disables the relaxation and is
        byte-identical to exact greedy.
    warm:
        Cross-call warm starts of the exact oracle's per-hub flow
        problems (``True`` by default; irrelevant under
        ``oracle="peel"``): each oracle call repairs the preflow the
        hub's previous call left behind — coverage only removes element
        arcs, leg payments only shrink vertex weights — instead of
        rebuilding the flow from zero, and seeds the density search from
        the hub's previous optimum.  Schedules are byte-identical warm
        or cold (property-tested); ``False`` restores per-call cold
        solves, the E15 benchmark's reference configuration.
    batch_k:
        Speculative batch width of the exact oracle's multi-hub flow
        tier (lazy mode; ``None`` defaults to
        :data:`~repro.core.tolerances.BATCH_K`, ``0``/``1`` disable):
        when the heap top is dirty, up to ``batch_k`` *contiguous* dirty
        top entries are popped together and solved in one
        block-diagonal arena pass
        (:class:`~repro.flow.exact_oracle.MultiHubSession`) instead of
        one flow problem at a time.  Refreshing the runners-up is
        speculation on where the heap top goes next — the greedy winner
        is re-derived from the refreshed *true* costs with the same
        tie-breaks, so the schedule is byte-identical at ``epsilon=0``
        at every width (property-tested), and with ``epsilon > 0`` the
        relaxation can accept clean champions straight from the batch.
    method:
        Flow kernel of the exact oracle's networks and arenas
        (irrelevant under ``oracle="peel"``): ``"auto"`` (default),
        ``"wave"``, ``"loop"``, or ``"jit"`` — the Numba-compiled tier,
        which requires the optional ``[jit]`` extra and raises
        :class:`~repro.flow.maxflow.FlowConfigError` without it.
        Kernel choice is a pure perf knob: schedules are byte-identical
        across methods (property-tested).
    """

    def __init__(
        self,
        graph: GraphView,
        workload: Workload,
        max_cross_edges: int | None = None,
        record_log: bool = False,
        backend: str = "auto",
        lazy: bool = True,
        oracle: str = "peel",
        epsilon: float = 0.0,
        warm: bool = True,
        batch_k: int | None = None,
        method: str = "auto",
    ) -> None:
        if epsilon < 0.0:
            raise ReproError(f"epsilon must be >= 0, got {epsilon!r}")
        if batch_k is not None and batch_k < 0:
            raise ReproError(f"batch_k must be >= 0, got {batch_k!r}")
        self.graph = as_graph_view(graph, backend)
        self.workload = workload
        self.max_cross_edges = max_cross_edges
        #: Per-run metrics registry; ``stats`` and the oracle session's
        #: ``flow_stats`` are views over its ``scheduler`` subtree, so
        #: ``self.metrics.snapshot()`` exports everything at once.
        self.metrics = MetricsRegistry()
        self.stats = ChitchatStats(node=self.metrics.node("scheduler"))
        self._record_log = record_log
        self._lazy = lazy
        self._epsilon = float(epsilon)
        self._oracle_mode = validate_oracle_mode(oracle)
        self._exact = (
            ExactOracle(
                warm=warm,
                method=method,
                metrics=self.metrics.node("scheduler", "oracle"),
            )
            if oracle != "peel"
            else None
        )
        self._batch_k = BATCH_K if batch_k is None else int(batch_k)
        self._multi = (
            MultiHubSession(self._exact)
            if self._exact is not None and self._batch_k >= 2
            else None
        )
        self.schedule = RequestSchedule()
        edges = edge_list(self.graph)
        self._uncovered: set[Edge] = set(edges)
        # dense edge-id mirrors of the scheduler state (CSR mode): the
        # oracle filters hub-graph elements and prices legs with vectorized
        # lookups instead of Python set membership
        self._mirror: ScheduleMirror | None = None
        singleton_costs: list[float] | None = None
        if isinstance(self.graph, CSRGraph):
            self._mirror = ScheduleMirror(self.graph, workload, edges)
            if self._mirror.arrays is not None:
                src, dst = self.graph.edge_arrays()
                singleton_costs = np.minimum(
                    self._mirror.arrays.rp[src], self._mirror.arrays.rc[dst]
                ).tolist()
        if singleton_costs is None:  # non-dense rates: price per edge
            singleton_costs = [hybrid_edge_cost(e, workload) for e in edges]
        self._adjacency = NeighborSetCache(self.graph)
        self._rank = node_ranks(self.graph)
        # hubs that can relay at all (static degrees; checked once) — the
        # bool mask backs the vectorized bootstrap, the set the hot loops
        self._eligible_mask: np.ndarray | None = None
        if isinstance(self.graph, CSRGraph):
            self._eligible_mask = (self.graph.in_degrees() > 0) & (
                self.graph.out_degrees() > 0
            )
            self._eligible: set[Node] = set(
                np.nonzero(self._eligible_mask)[0].tolist()
            )
        else:
            self._eligible = {
                node
                for node in self.graph.nodes()
                if self.graph.in_degree(node) > 0
                and self.graph.out_degree(node) > 0
            }
        self._hub_version: dict[Node, int] = {}
        self._hub_cache: dict[Node, HubGraph] = {}
        # each hub's live full champion (absent after cutoffs/retires);
        # exact champions back the lazy retention check in _invalidate
        self._champion: dict[Node, DensestResult] = {}
        self._hub_heap: list[HubEntry] = []
        # hubs whose heap key is a stale-but-valid lower bound, re-oracled
        # only when their entry reaches the heap top (lazy mode)
        self._dirty: set[Node] = set()
        # hubs with a live heap entry (retired / pruned hubs are absent)
        self._queued: set[Node] = set()
        # best certified lower bound on each hub's *true optimum* cost per
        # element — valid across coverage events (unlike the peel output,
        # which is only 2-approximate and can dip when elements vanish);
        # reset whenever the hub is re-oracled, which eager weight-drop
        # refreshes guarantee happens before any weight can fall
        self._opt_lb: dict[Node, float] = {}
        # per-hub oracle-input versions: bumped whenever a covering event
        # or leg payment touches the hub-graph.  A cutoff records the
        # version it probed (``_bound_state``); when the parked entry
        # resurfaces at the same version the probe would reproduce the
        # same bound — and a popped entry's key never exceeds the bar — so
        # the redundant probe is skipped and the peel runs directly.
        self._state_version: dict[Node, int] = {}
        self._bound_state: dict[Node, int] = {}
        # full peels the eager invalidation rule would have issued
        self._eager_equivalent = 0
        self._bootstrapped = False
        self._singleton_heap: list[tuple[float, int, Edge]] = [
            (cost, erank, e)
            for cost, erank, e in zip(
                singleton_costs, edge_ranks(self.graph, edges, self._rank), edges
            )
        ]
        heapq.heapify(self._singleton_heap)

    # ------------------------------------------------------------------
    def run(self) -> RequestSchedule:
        """Execute the greedy loop until every edge is covered."""
        with trace.span("scheduler.run") as run_span:
            if not self._bootstrapped:
                self._bootstrapped = True
                with trace.span("scheduler.bootstrap"):
                    if self._lazy:
                        self._seed_lazy_heap()
                    else:
                        for node in self.graph.nodes():
                            if node in self._eligible:
                                self._refresh_hub(node)
            while self._uncovered:
                singleton = self._best_singleton()
                limit = singleton[0] if singleton is not None else math.inf
                hub_entry = self._pop_best_hub_entry(limit)
                if hub_entry is not None:
                    self._apply_hub(hub_entry[4])
                elif singleton is not None:
                    heapq.heappop(self._singleton_heap)
                    self._apply_singleton(singleton[2])
                else:  # pragma: no cover - defensive; singletons always exist
                    raise RuntimeError(
                        "no candidate available but edges remain uncovered"
                    )
            run_span.set(
                hub_selections=self.stats.hub_selections,
                singleton_selections=self.stats.singleton_selections,
                oracle_calls=self.stats.oracle_calls,
            )
        if self._lazy:
            self.stats.oracle_calls_saved = (
                self._eager_equivalent - self.stats.oracle_calls
            )
        if self._exact is not None:
            self.stats.warm_solves = self._exact.warm_solves
            self.stats.preflow_repairs = self._exact.preflow_repairs
            self.stats.flow_passes = self._exact.flow_passes
            flow_stats = self._exact.flow_stats
            self.stats.kernel_invocations = flow_stats.kernel_invocations
            self.stats.batched_solves = flow_stats.batched_solves
            self.stats.batched_blocks = flow_stats.batched_blocks
            self.stats.batch_freeze_seconds = flow_stats.freeze_seconds
            self.stats.batch_discharge_seconds = flow_stats.discharge_seconds
            self.stats.batch_relabel_seconds = flow_stats.relabel_seconds
            self.stats.flow_solve_seconds = flow_stats.solve_seconds
            self.stats.jit_compile_seconds = flow_stats.jit_compile_seconds
        self.stats.final_cost = schedule_cost(self.schedule, self.workload)
        return self.schedule

    # ------------------------------------------------------------------
    # Candidate maintenance
    # ------------------------------------------------------------------
    def _seed_lazy_heap(self) -> None:
        """Price every hub's trivial champion lower bound; peel nothing.

        With untouched weights, any sub-hub-graph of ``w`` covers at most
        ``1 + min(outdeg(x), outdeg(w))`` elements per selected producer
        ``x`` (its leg plus its possible cross-edges) and one element per
        selected consumer ``y``, so by the mediant inequality the champion
        costs at least::

            LB(w) = min(min_x rp(x) / (1 + min(outdeg(x), outdeg(w))),
                        min_y rc(y))

        — a valid heap key until one of ``G(w)``'s legs is paid for (an
        eager refresh replaces the entry then).  A hub whose bound exceeds
        the dearest possible hybrid price among its own elements::

            M(w) = max(min(max_x rp(x), rc(w)),
                       min(rp(w), max_y rc(y)),
                       min(max_x rp(x), max_y rc(y)))

        can never win a greedy step before a leg payment (every element it
        could cover has a strictly cheaper singleton available), so it is
        not seeded at all.  The last term of ``M`` prices hypothetical
        cross-edges and always dominates both bounds, so the prune can
        only fire for hubs provably *cross-free* (every predecessor's sole
        successor is the hub itself): there the per-producer cap is 1 and
        the cross term drops, leaving the sharper pair ::

            LB(w) = min(min_x rp(x), min_y rc(y))
            M(w)  = max(min(max_x rp(x), rc(w)), min(rp(w), max_y rc(y)))

        On the CSR backend everything comes from one vectorized pass over
        the adjacency arrays.
        """
        graph = self.graph
        entries: list[HubEntry] = []
        pruned = 0
        arrays = self._mirror.arrays if self._mirror is not None else None
        if isinstance(graph, CSRGraph) and arrays is not None:
            n = graph.num_nodes
            indeg = graph.in_degrees()
            outdeg = graph.out_degrees()
            eligible = self._eligible_mask
            self._eager_equivalent += int(eligible.sum())
            rp, rc = arrays.rp, arrays.rc
            outdeg_f = outdeg.astype(np.float64)
            in_ptr, in_idx = graph.in_indptr, graph.in_indices
            out_ptr, out_idx = graph.out_indptr, graph.out_indices
            # per-predecessor ratios / rates, segment-reduced per hub
            # (empty in-slices occupy no room in in_idx, so the non-empty
            # segments tile the flat array and reduceat sees exactly them)
            hub_out = np.repeat(outdeg_f, indeg)
            x_ratio = rp[in_idx] / (1.0 + np.minimum(outdeg_f[in_idx], hub_out))
            x_min = np.full(n, np.inf)
            x_min_plain = np.full(n, np.inf)
            x_max = np.zeros(n)
            pred_max_out = np.zeros(n, dtype=np.int64)
            nz_in = np.nonzero(indeg)[0]
            if nz_in.size:
                starts = in_ptr[:-1][nz_in]
                x_min[nz_in] = np.minimum.reduceat(x_ratio, starts)
                x_min_plain[nz_in] = np.minimum.reduceat(rp[in_idx], starts)
                x_max[nz_in] = np.maximum.reduceat(rp[in_idx], starts)
                pred_max_out[nz_in] = np.maximum.reduceat(outdeg[in_idx], starts)
            y_min = np.full(n, np.inf)
            y_max = np.zeros(n)
            nz_out = np.nonzero(outdeg)[0]
            if nz_out.size:
                starts = out_ptr[:-1][nz_out]
                y_min[nz_out] = np.minimum.reduceat(rc[out_idx], starts)
                y_max[nz_out] = np.maximum.reduceat(rc[out_idx], starts)
            # a predecessor whose only successor is the hub contributes no
            # cross-edge; when that holds for all of them, both bounds
            # drop their cross terms (see docstring)
            crossfree = pred_max_out <= 1
            lower = (
                np.where(
                    crossfree,
                    np.minimum(x_min_plain, y_min),
                    np.minimum(x_min, y_min),
                )
                * OPT_BOUND_MARGIN
            )
            leg_dearest = np.maximum(
                np.minimum(x_max, rc), np.minimum(rp, y_max)
            )
            dearest = np.where(
                crossfree,
                leg_dearest,
                np.maximum(leg_dearest, np.minimum(x_max, y_max)),
            )
            seed = eligible & ~(lower > dearest)
            pruned = int(eligible.sum()) - int(seed.sum())
            for hub in np.nonzero(seed)[0].tolist():
                self._hub_version[hub] = 1
                self._dirty.add(hub)
                entries.append((float(lower[hub]), hub, hub, 1, None))
        else:
            workload = self.workload
            for hub in graph.nodes():
                if hub not in self._eligible:
                    continue
                self._eager_equivalent += 1
                out_w = graph.out_degree(hub)
                lower = math.inf
                lower_plain = math.inf
                x_max = 0.0
                crossfree = True
                for x in graph.predecessors(hub):
                    rpx = workload.rp(x)
                    out_x = graph.out_degree(x)
                    if out_x > 1:
                        crossfree = False
                    lower = min(lower, rpx / (1.0 + min(out_x, out_w)))
                    lower_plain = min(lower_plain, rpx)
                    x_max = max(x_max, rpx)
                y_min = math.inf
                y_max = 0.0
                for y in graph.successors(hub):
                    rcy = workload.rc(y)
                    y_min = min(y_min, rcy)
                    y_max = max(y_max, rcy)
                lower = min(lower_plain if crossfree else lower, y_min)
                lower *= OPT_BOUND_MARGIN
                dearest = max(
                    min(x_max, workload.rc(hub)),
                    min(workload.rp(hub), y_max),
                )
                if not crossfree:
                    dearest = max(dearest, min(x_max, y_max))
                if lower > dearest:
                    pruned += 1
                    continue
                self._hub_version[hub] = 1
                self._dirty.add(hub)
                entries.append((lower, self._rank[hub], hub, 1, None))
        self.stats.hubs_pruned = pruned
        self._hub_heap = entries
        for _key, _rank, hub, _version, _result in entries:
            self._queued.add(hub)
            self._opt_lb[hub] = _key
        heapq.heapify(self._hub_heap)

    @trace.traced("scheduler.refresh")
    def _refresh_hub(self, hub: Node, upper_bound: float | None = None) -> None:
        """Recompute hub ``w``'s champion sub-hub-graph and (re)queue it.

        With ``upper_bound`` (lazy recomputes) the oracle may abandon the
        peel once its pre-peel relaxation proves the champion cannot beat
        the current best candidate; the certified bound is requeued as a
        dirty entry (still a valid lower bound) instead of a champion.
        """
        version = self._hub_version.get(hub, 0) + 1
        self._hub_version[hub] = version
        self._dirty.discard(hub)
        if hub not in self._eligible:
            return  # cannot relay anything
        hub_graph = self._hub_cache.get(hub)
        if hub_graph is None:
            hub_graph = build_hub_graph(self.graph, hub, self.max_cross_edges)
            self._hub_cache[hub] = hub_graph
        oracle = densest_subgraph
        exact = self._exact is not None and use_exact(self._oracle_mode, hub_graph)
        if exact:
            oracle = self._exact
        mirror = self._mirror
        result = oracle(
            hub_graph,
            self.workload,
            self.schedule,
            self._uncovered,
            uncovered_mask=mirror.uncovered_mask if mirror else None,
            arrays=mirror.arrays if mirror else None,
            upper_bound=upper_bound,
        )
        self._install_result(hub, version, result, exact)

    def _install_result(
        self,
        hub: Node,
        version: int,
        result: DensestResult | OracleCutoff | None,
        exact: bool,
    ) -> None:
        """Install one oracle outcome: requeue, retire, or crown the hub.

        The single write path for oracle results — the sequential
        :meth:`_refresh_hub` and the batched :meth:`_refresh_hubs_batched`
        both land here, so champion/bound bookkeeping cannot drift
        between them.
        """
        if isinstance(result, OracleCutoff):
            self.stats.oracle_early_exits += 1
            self._dirty.add(hub)
            self._queued.add(hub)
            self._champion.pop(hub, None)
            self._opt_lb[hub] = result.lower_bound
            self._bound_state[hub] = self._state_version.get(hub, 0)
            heapq.heappush(
                self._hub_heap,
                (result.lower_bound, self._rank[hub], hub, version, None),
            )
            return
        self.stats.oracle_calls += 1
        if exact:
            self.stats.exact_oracle_calls += 1
        if result is None or not result.covered:
            # no uncovered element left in this hub-graph: coverage only
            # shrinks further, so the hub is retired until a leg payment
            # routes it back through an eager refresh
            self._queued.discard(hub)
            self._champion.pop(hub, None)
            return
        self._queued.add(hub)
        self._champion[hub] = result
        self._opt_lb[hub] = result.opt_lower_bound
        heapq.heappush(
            self._hub_heap,
            (result.cost_per_element, self._rank[hub], hub, version, result),
        )

    def _gather_dirty_top(self, limit: float) -> list[tuple[float, Node]]:
        """Pop up to ``batch_k`` contiguous live dirty top ``(key, hub)``s.

        Stops at the first clean entry (it may be this step's winner),
        the first key above ``limit`` (a singleton wins regardless), or
        the batch width.  The popped entries are *not* reinserted — the
        batched refresh requeues every gathered hub at its true cost or
        refreshed probe bound.  Called with a live dirty top, so at
        least one hub comes back.
        """
        heap = self._hub_heap
        gathered: list[tuple[float, Node]] = []
        while heap and len(gathered) < self._batch_k:
            key, _rank, hub, version, _result = heap[0]
            if version != self._hub_version.get(hub, 0):
                heapq.heappop(heap)
                continue
            if key > limit or hub not in self._dirty:
                break
            heapq.heappop(heap)
            gathered.append((key, hub))
        return gathered

    @trace.traced("scheduler.batched_refresh")
    def _refresh_hubs_batched(
        self, gathered: list[tuple[float, Node]], limit: float
    ) -> None:
        """Recompute several hubs' champions in one batched oracle call.

        Exact-eligible hub-graphs go through the
        :class:`~repro.flow.exact_oracle.MultiHubSession` arena as one
        block-diagonal flow solve; stragglers (``oracle="auto"`` hubs
        beyond the exact ceiling) take the ordinary peel.  Each hub
        carries the same bounded-probe bar the sequential path would
        have passed — the cheapest *competing* candidate: the limit, the
        next heap key, or another gathered hub's certified key — so
        speculative evaluation pays an O(m) probe, not a full solve, for
        hubs that provably cannot win this step.  Hubs whose probe was
        already memoized for this state skip the probe (it cannot cut
        off twice), exactly as the sequential path peels them directly.
        Installed results are true champions or refreshed certified
        bounds either way, so the greedy winner re-derives from the same
        keys with unchanged tie-breaks as the one-at-a-time refresh.
        """
        keys = [key for key, _hub in gathered]
        next_key = self._hub_heap[0][0] if self._hub_heap else math.inf
        jobs: list[tuple[Node, HubGraph, int, float | None]] = []
        for idx, (_key, hub) in enumerate(gathered):
            version = self._hub_version.get(hub, 0) + 1
            self._hub_version[hub] = version
            self._dirty.discard(hub)
            if hub not in self._eligible:  # pragma: no cover - defensive
                continue  # gathered entries only exist for eligible hubs
            if self._bound_state.get(hub) == self._state_version.get(hub, 0):
                bar: float | None = None  # probed this state already
            else:
                other = keys[1] if idx == 0 else keys[0]
                bar = min(limit, next_key, other)
            hub_graph = self._hub_cache.get(hub)
            if hub_graph is None:
                hub_graph = build_hub_graph(
                    self.graph, hub, self.max_cross_edges
                )
                self._hub_cache[hub] = hub_graph
            if use_exact(self._oracle_mode, hub_graph):
                jobs.append((hub, hub_graph, version, bar))
            else:
                mirror = self._mirror
                result = densest_subgraph(
                    hub_graph,
                    self.workload,
                    self.schedule,
                    self._uncovered,
                    uncovered_mask=mirror.uncovered_mask if mirror else None,
                    arrays=mirror.arrays if mirror else None,
                    upper_bound=bar,
                )
                self._install_result(hub, version, result, exact=False)
        if not jobs:
            return
        mirror = self._mirror
        results = self._multi(
            [hub_graph for _hub, hub_graph, _version, _bar in jobs],
            self.workload,
            self.schedule,
            self._uncovered,
            uncovered_mask=mirror.uncovered_mask if mirror else None,
            arrays=mirror.arrays if mirror else None,
            upper_bounds=[bar for _hub, _hub_graph, _version, bar in jobs],
        )
        for (hub, _hub_graph, version, _bar), result in zip(jobs, results):
            self._install_result(hub, version, result, exact=True)

    @trace.traced("scheduler.heap_pop")
    def _pop_best_hub_entry(self, limit: float = math.inf) -> HubEntry | None:
        """Pop and return the winning clean hub entry, or ``None``.

        ``None`` means the best singleton (priced ``limit``) wins this
        greedy step.  Discards stale-version entries.  In lazy mode, an
        entry whose hub is dirty carries a lower bound of the true
        champion cost, so it is re-oracled only when it reaches the heap
        top — a *clean* top entry is therefore the global best hub
        candidate.  Each recompute passes the cheapest competing
        candidate (``limit`` = best singleton, or the next heap key) as
        the oracle's ``upper_bound`` so hubs that cannot win this step
        abandon after an O(m) probe.  With ``epsilon > 0`` a dirty top
        may instead be resolved by :meth:`_epsilon_accept` without any
        oracle work.
        """
        heap = self._hub_heap
        while heap:
            entry = heap[0]
            key, _rank, hub, version, _result = entry
            if version != self._hub_version.get(hub, 0):
                heapq.heappop(heap)
                continue
            if key > limit:
                # every entry's true cost is at least its key: a singleton
                # wins this step regardless of what a recompute would find
                return None
            if hub not in self._dirty:
                return heapq.heappop(heap)
            if self._epsilon > 0.0:
                outcome = self._epsilon_accept(limit)
                if outcome is _SINGLETON_WINS:
                    return None
                if outcome is not None:
                    return outcome
                # no clean candidate within (1 + ε): fall through to the
                # exact re-evaluation of the dirty top
            if self._multi is not None:
                gathered = self._gather_dirty_top(limit)
                if len(gathered) >= 2:
                    # speculative top-k batch: refresh the contiguous dirty
                    # prefix in one block-diagonal arena pass, then re-derive
                    # the winner from the installed true costs — identical to
                    # refreshing each hub one at a time at the heap top
                    self._refresh_hubs_batched(gathered, limit)
                    continue
                hub = gathered[0][1]
            else:
                heapq.heappop(heap)
            if self._bound_state.get(hub) == self._state_version.get(hub, 0):
                # this exact state was already probed (the parked bound is
                # the probe's answer, and a popped key never exceeds the
                # bar) — a second probe cannot cut off, peel directly
                self._refresh_hub(hub)
            else:
                bar = limit if not heap else min(limit, heap[0][0])
                self._refresh_hub(hub, upper_bound=bar)
        return None

    def _epsilon_accept(self, limit: float):
        """Resolve a dirty heap top by the ``(1 + ε)`` relaxation.

        Preconditions: the heap top is a live dirty entry with key
        ``anchor ≤ limit``.  Every candidate's true cost is at least its
        key and ``anchor`` is the minimum key, so the true step optimum
        is at least ``anchor``.  If some *clean* candidate — a clean hub
        entry within the scanned prefix, or the best singleton — is
        priced at most ``(1 + ε)·anchor``, selecting it costs at most
        ``(1 + ε)`` times the step optimum, and the dirty hubs scanned
        over are simply left parked (their bounds stay valid).

        Returns the popped clean entry, :data:`_SINGLETON_WINS`, or
        ``None`` when nothing clean is in range (caller re-evaluates the
        dirty top exactly, as at ``epsilon = 0``).
        """
        heap = self._hub_heap
        anchor = heap[0][0]
        threshold = (1.0 + self._epsilon) * anchor + EPS_ACCEPT_SLACK
        parked: list[HubEntry] = []
        found: HubEntry | None = None
        while heap:
            entry = heap[0]
            key, _rank, hub, version, _result = entry
            if version != self._hub_version.get(hub, 0):
                heapq.heappop(heap)
                continue
            if key > threshold or key > limit:
                break
            if hub in self._dirty:
                parked.append(heapq.heappop(heap))
                continue
            found = heapq.heappop(heap)
            break
        for entry in parked:
            heapq.heappush(heap, entry)
        if found is not None:
            self.stats.epsilon_accepts += 1
            trace.instant("scheduler.epsilon_accept", kind="hub")
            return found
        if limit <= threshold:
            self.stats.epsilon_accepts += 1
            trace.instant("scheduler.epsilon_accept", kind="singleton")
            return _SINGLETON_WINS
        return None

    def _best_singleton(self) -> tuple[float, int, Edge] | None:
        while self._singleton_heap:
            entry = self._singleton_heap[0]
            if entry[2] in self._uncovered:
                return entry
            heapq.heappop(self._singleton_heap)
        return None

    # ------------------------------------------------------------------
    # Selection application
    # ------------------------------------------------------------------
    def _cover(self, edges, edge_ids: np.ndarray | None) -> None:
        """Drop ``edges`` from the uncovered set (and its bitmask mirror)."""
        self._uncovered.difference_update(edges)
        if self._mirror is not None:
            self._mirror.cover(edges, edge_ids)

    def _add_push(self, edge: Edge) -> None:
        self.schedule.add_push(edge)
        if self._mirror is not None:
            self._mirror.add_push(edge)

    def _add_pull(self, edge: Edge) -> None:
        self.schedule.add_pull(edge)
        if self._mirror is not None:
            self._mirror.add_pull(edge)

    def _apply_hub(self, result: DensestResult) -> None:
        hub = result.hub
        newly = result.covered & self._uncovered
        if not newly:  # stale despite version match; defensive
            self._refresh_hub(hub)
            return
        for x in result.x_selected:
            self._add_push((x, hub))
        for y in result.y_selected:
            self._add_pull((hub, y))
        for edge in result.covered:
            u, v = edge
            if u != hub and v != hub:  # cross-edge: piggybacked through hub
                self.schedule.cover_via_hub(edge, hub)
        self._cover(result.covered, result.covered_ids)
        self.stats.hub_selections += 1
        self.stats.edges_covered_by_hubs += len(newly)
        if self._record_log:
            self.stats.selection_log.append(
                ("hub", result.cost_per_element, len(newly))
            )
        # the selection's own hub-graph lost vertex weights (its legs were
        # just paid) — the only hub whose champion can get cheaper
        self._invalidate(result.covered, weight_drops=(hub,))

    def _apply_singleton(self, edge: Edge) -> None:
        u, v = edge
        if self.workload.rp(u) <= self.workload.rc(v):
            self._add_push(edge)
            drops = (v,)  # edge is the push leg x -> w of G(v)
        else:
            self._add_pull(edge)
            drops = (u,)  # edge is the pull leg w -> y of G(u)
        self._cover((edge,), None)
        self.stats.singleton_selections += 1
        if self._record_log:
            self.stats.selection_log.append(
                ("singleton", hybrid_edge_cost(edge, self.workload), 1)
            )
        self._invalidate([edge], weight_drops=drops)

    def _invalidate(self, covered_edges, weight_drops: tuple[Node, ...]) -> None:
        """Algorithm 1 line 14, split by how a hub's champion can move.

        Covering elements only *raises* champion costs, so in lazy mode
        those hubs' heap keys remain valid lower bounds and the hubs are
        merely marked dirty.  Paying a leg *lowers* the owning hub-graph's
        vertex weight, which can cheapen its champion below the stale key,
        so ``weight_drops`` (the selection's own hub, or the singleton's
        push/pull counterpart) is refreshed eagerly.  Eager mode refreshes
        every affected hub, exactly as published.
        """
        affected = affected_hubs(self._adjacency, covered_edges)
        affected &= self._eligible
        if self._lazy:
            self._eager_equivalent += len(affected)
            versions = self._state_version
            for hub in affected:
                versions[hub] = versions.get(hub, 0) + 1
            for hub in weight_drops:
                versions[hub] = versions.get(hub, 0) + 1
            for hub in affected & self._queued:
                if hub in self._dirty:
                    continue  # key already a valid optimum lower bound
                if hub in weight_drops:
                    continue  # the eager refresh below replaces its entry
                champion = self._champion.get(hub)
                if (
                    champion is not None
                    and champion.exact
                    and champion.covered.isdisjoint(covered_edges)
                ):
                    # an exact champion untouched by this covering event
                    # is still exactly optimal: covering elements outside
                    # its covered set can only *shrink* competing
                    # subgraphs' coverage, and the maximal optimum it
                    # came from never contained them — keep the entry
                    # clean, no re-evaluation will be needed for it
                    self.stats.champions_retained += 1
                    continue
                # the live entry's key is the peel *output*, which is only
                # 2-approximate and may overestimate the hub's champion
                # after this covering event — downgrade the key to the
                # certified optimum bound recorded at the last oracle call
                # (for an exact champion the bound is the optimum itself
                # less a float margin, so the downgrade is nearly free)
                version = self._hub_version.get(hub, 0) + 1
                self._hub_version[hub] = version
                self._dirty.add(hub)
                heapq.heappush(
                    self._hub_heap,
                    (self._opt_lb[hub], self._rank[hub], hub, version, None),
                )
            # weight-drop refreshes happen at the current state, so their
            # probes certify fresh bounds — bounding them by the best
            # singleton parks hubs whose residual champion can't compete
            singleton = self._best_singleton()
            bar = singleton[0] if singleton is not None else None
            for hub in weight_drops:
                if hub in self._eligible:
                    self._refresh_hub(hub, upper_bound=bar)
        else:
            for hub in affected:
                self._refresh_hub(hub)


def chitchat_schedule(
    graph: GraphView,
    workload: Workload,
    max_cross_edges: int | None = None,
    backend: str = "auto",
    lazy: bool = True,
    oracle: str = "peel",
    epsilon: float = 0.0,
    warm: bool = True,
    batch_k: int | None = None,
    method: str = "auto",
) -> RequestSchedule:
    """Run CHITCHAT on a DISSEMINATION instance and return the schedule."""
    return ChitchatScheduler(
        graph,
        workload,
        max_cross_edges,
        backend=backend,
        lazy=lazy,
        oracle=oracle,
        epsilon=epsilon,
        warm=warm,
        batch_k=batch_k,
        method=method,
    ).run()


def chitchat_with_stats(
    graph: GraphView,
    workload: Workload,
    max_cross_edges: int | None = None,
    backend: str = "auto",
    lazy: bool = True,
    oracle: str = "peel",
    epsilon: float = 0.0,
    warm: bool = True,
    batch_k: int | None = None,
    method: str = "auto",
) -> tuple[RequestSchedule, ChitchatStats]:
    """Like :func:`chitchat_schedule` but also returns run diagnostics."""
    scheduler = ChitchatScheduler(
        graph,
        workload,
        max_cross_edges,
        record_log=True,
        backend=backend,
        lazy=lazy,
        oracle=oracle,
        epsilon=epsilon,
        warm=warm,
        batch_k=batch_k,
        method=method,
    )
    schedule = scheduler.run()
    return schedule, scheduler.stats


def greedy_upper_bound(graph: GraphView, workload: Workload) -> float:
    """Cost of the hybrid schedule — CHITCHAT can never do worse.

    CHITCHAT's candidate pool contains every hybrid singleton, so its greedy
    solution is upper-bounded by the hybrid cost; tests assert this bound.
    """
    return schedule_cost(hybrid_schedule(graph, workload), workload)
