"""CHITCHAT: the O(log n)-approximation algorithm (paper section 3.1).

The DISSEMINATION problem maps to SET-COVER: the ground set is the edge set
``E``; candidates are (a) singleton edges served directly at the hybrid cost
``c*(e) = min(rp(u), rc(v))`` and (b) hub-graphs, which cover their push
legs, pull legs, and cross-edges at the cost of the not-yet-paid legs.

The greedy SET-COVER step — "pick the candidate with minimum cost per newly
covered element" — cannot enumerate the exponentially many hub-graphs, so
Algorithm 1 uses an oracle: for every hub ``w``, the weighted
densest-subgraph peeling of :mod:`repro.core.densest` finds the best
sub-hub-graph of ``G(w)``; a priority queue keeps the per-hub champions and
the champions of hubs touched by a selection are recomputed (lines 14–18).

Combined guarantee (Theorem 4): ``O(2 ln n) = O(ln n)``.

The scheduler runs on any :class:`~repro.graph.view.GraphView`.  With
``backend="auto"`` (the default) large dense-id graphs are frozen into a
:class:`~repro.graph.csr.CSRGraph` first; on that backend the singleton
prices are computed in one vectorized pass over the edge arrays, the
uncovered set is mirrored in a dense edge-id bitmask that the oracle uses
to filter hub-graph elements without Python set lookups, and hub
invalidation intersects sorted CSR slices.  Both backends produce identical
schedules (property-tested).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

import numpy as np

from repro.core.baselines import hybrid_schedule
from repro.core.cost import hybrid_edge_cost, schedule_cost
from repro.core.densest import DensestResult, ScheduleMirror, densest_subgraph
from repro.core.hubgraph import HubGraph, build_hub_graph
from repro.core.schedule import RequestSchedule
from repro.graph.csr import CSRGraph
from repro.graph.digraph import Edge, Node
from repro.graph.view import GraphView, NeighborSetCache, as_graph_view, edge_list
from repro.workload.rates import Workload


@dataclass
class ChitchatStats:
    """Diagnostics accumulated during a CHITCHAT run."""

    hub_selections: int = 0
    singleton_selections: int = 0
    oracle_calls: int = 0
    edges_covered_by_hubs: int = 0
    final_cost: float = 0.0
    selection_log: list[tuple[str, float, int]] = field(default_factory=list)


class ChitchatScheduler:
    """Stateful CHITCHAT runner (use :func:`chitchat_schedule` for one-shots).

    Parameters
    ----------
    graph, workload:
        The DISSEMINATION instance.  ``graph`` may be either adjacency
        backend.
    max_cross_edges:
        Optional per-hub cross-edge bound (the MapReduce ``b`` of section
        3.2), trading optimization opportunities for memory/time on dense
        hubs.
    record_log:
        When True, every greedy selection is appended to
        ``stats.selection_log`` as ``(kind, cost_per_element, covered)``.
    backend:
        ``"auto"`` (default) applies the CSR fast path above
        :data:`~repro.graph.view.CSR_FASTPATH_THRESHOLD` nodes; ``"csr"``
        and ``"dict"`` force a backend.
    """

    def __init__(
        self,
        graph: GraphView,
        workload: Workload,
        max_cross_edges: int | None = None,
        record_log: bool = False,
        backend: str = "auto",
    ) -> None:
        self.graph = as_graph_view(graph, backend)
        self.workload = workload
        self.max_cross_edges = max_cross_edges
        self.stats = ChitchatStats()
        self._record_log = record_log
        self.schedule = RequestSchedule()
        edges = edge_list(self.graph)
        self._uncovered: set[Edge] = set(edges)
        # dense edge-id mirrors of the scheduler state (CSR mode): the
        # oracle filters hub-graph elements and prices legs with vectorized
        # lookups instead of Python set membership
        self._mirror: ScheduleMirror | None = None
        singleton_costs: list[float] | None = None
        if isinstance(self.graph, CSRGraph):
            self._mirror = ScheduleMirror(self.graph, workload, edges)
            if self._mirror.arrays is not None:
                src, dst = self.graph.edge_arrays()
                singleton_costs = np.minimum(
                    self._mirror.arrays.rp[src], self._mirror.arrays.rc[dst]
                ).tolist()
        if singleton_costs is None:  # non-dense rates: price per edge
            singleton_costs = [hybrid_edge_cost(e, workload) for e in edges]
        self._adjacency = NeighborSetCache(self.graph)
        self._hub_version: dict[Node, int] = {}
        self._hub_cache: dict[Node, HubGraph] = {}
        # heap of (cost_per_element, tiebreak, hub, version, result)
        self._hub_heap: list[tuple[float, str, Node, int, DensestResult]] = []
        self._singleton_heap: list[tuple[float, str, Edge]] = [
            (cost, repr(e), e) for cost, e in zip(singleton_costs, edges)
        ]
        heapq.heapify(self._singleton_heap)

    # ------------------------------------------------------------------
    def run(self) -> RequestSchedule:
        """Execute the greedy loop until every edge is covered."""
        for node in self.graph.nodes():
            self._refresh_hub(node)
        while self._uncovered:
            hub_entry = self._best_hub_entry()
            singleton = self._best_singleton()
            if hub_entry is not None and (
                singleton is None or hub_entry[0] <= singleton[0]
            ):
                heapq.heappop(self._hub_heap)
                self._apply_hub(hub_entry[4])
            elif singleton is not None:
                heapq.heappop(self._singleton_heap)
                self._apply_singleton(singleton[2])
            else:  # pragma: no cover - defensive; singletons always exist
                raise RuntimeError("no candidate available but edges remain uncovered")
        self.stats.final_cost = schedule_cost(self.schedule, self.workload)
        return self.schedule

    # ------------------------------------------------------------------
    # Candidate maintenance
    # ------------------------------------------------------------------
    def _refresh_hub(self, hub: Node) -> None:
        """Recompute hub ``w``'s champion sub-hub-graph and (re)queue it."""
        version = self._hub_version.get(hub, 0) + 1
        self._hub_version[hub] = version
        if self.graph.in_degree(hub) == 0 or self.graph.out_degree(hub) == 0:
            return  # cannot relay anything
        hub_graph = self._hub_cache.get(hub)
        if hub_graph is None:
            hub_graph = build_hub_graph(self.graph, hub, self.max_cross_edges)
            self._hub_cache[hub] = hub_graph
        self.stats.oracle_calls += 1
        mirror = self._mirror
        result = densest_subgraph(
            hub_graph,
            self.workload,
            self.schedule,
            self._uncovered,
            uncovered_mask=mirror.uncovered_mask if mirror else None,
            arrays=mirror.arrays if mirror else None,
        )
        if result is None or not result.covered:
            return
        heapq.heappush(
            self._hub_heap,
            (result.cost_per_element, repr(hub), hub, version, result),
        )

    def _best_hub_entry(self) -> tuple[float, str, Node, int, DensestResult] | None:
        """Peek the freshest hub champion, discarding stale heap entries."""
        while self._hub_heap:
            entry = self._hub_heap[0]
            _, _, hub, version, _ = entry
            if version == self._hub_version.get(hub, 0):
                return entry
            heapq.heappop(self._hub_heap)
        return None

    def _best_singleton(self) -> tuple[float, str, Edge] | None:
        while self._singleton_heap:
            entry = self._singleton_heap[0]
            if entry[2] in self._uncovered:
                return entry
            heapq.heappop(self._singleton_heap)
        return None

    # ------------------------------------------------------------------
    # Selection application
    # ------------------------------------------------------------------
    def _cover(self, edges, edge_ids: np.ndarray | None) -> None:
        """Drop ``edges`` from the uncovered set (and its bitmask mirror)."""
        self._uncovered.difference_update(edges)
        if self._mirror is not None:
            self._mirror.cover(edges, edge_ids)

    def _add_push(self, edge: Edge) -> None:
        self.schedule.add_push(edge)
        if self._mirror is not None:
            self._mirror.add_push(edge)

    def _add_pull(self, edge: Edge) -> None:
        self.schedule.add_pull(edge)
        if self._mirror is not None:
            self._mirror.add_pull(edge)

    def _apply_hub(self, result: DensestResult) -> None:
        hub = result.hub
        newly = result.covered & self._uncovered
        if not newly:  # stale despite version match; defensive
            self._refresh_hub(hub)
            return
        for x in result.x_selected:
            self._add_push((x, hub))
        for y in result.y_selected:
            self._add_pull((hub, y))
        for edge in result.covered:
            u, v = edge
            if u != hub and v != hub:  # cross-edge: piggybacked through hub
                self.schedule.cover_via_hub(edge, hub)
        self._cover(result.covered, result.covered_ids)
        self.stats.hub_selections += 1
        self.stats.edges_covered_by_hubs += len(newly)
        if self._record_log:
            self.stats.selection_log.append(
                ("hub", result.cost_per_element, len(newly))
            )
        self._refresh_affected(result.covered)

    def _apply_singleton(self, edge: Edge) -> None:
        u, v = edge
        if self.workload.rp(u) <= self.workload.rc(v):
            self._add_push(edge)
        else:
            self._add_pull(edge)
        self._cover((edge,), None)
        self.stats.singleton_selections += 1
        if self._record_log:
            self.stats.selection_log.append(
                ("singleton", hybrid_edge_cost(edge, self.workload), 1)
            )
        self._refresh_affected([edge])

    def _refresh_affected(self, covered_edges) -> None:
        """Recompute every hub whose hub-graph contains a covered element.

        Edge ``a -> b`` appears in ``G(b)`` (as a push leg), ``G(a)`` (as a
        pull leg), and ``G(w)`` for every wedge ``a -> w -> b`` (as a
        cross-edge) — Algorithm 1 line 14.
        """
        affected: set[Node] = set()
        for a, b in covered_edges:
            affected.add(a)
            affected.add(b)
            affected.update(self._adjacency.wedge(a, b))
        for hub in affected:
            self._refresh_hub(hub)


def chitchat_schedule(
    graph: GraphView,
    workload: Workload,
    max_cross_edges: int | None = None,
    backend: str = "auto",
) -> RequestSchedule:
    """Run CHITCHAT on a DISSEMINATION instance and return the schedule."""
    return ChitchatScheduler(graph, workload, max_cross_edges, backend=backend).run()


def chitchat_with_stats(
    graph: GraphView,
    workload: Workload,
    max_cross_edges: int | None = None,
    backend: str = "auto",
) -> tuple[RequestSchedule, ChitchatStats]:
    """Like :func:`chitchat_schedule` but also returns run diagnostics."""
    scheduler = ChitchatScheduler(
        graph, workload, max_cross_edges, record_log=True, backend=backend
    )
    schedule = scheduler.run()
    return schedule, scheduler.stats


def greedy_upper_bound(graph: GraphView, workload: Workload) -> float:
    """Cost of the hybrid schedule — CHITCHAT can never do worse.

    CHITCHAT's candidate pool contains every hybrid singleton, so its greedy
    solution is upper-bounded by the hybrid cost; tests assert this bound.
    """
    return schedule_cost(hybrid_schedule(graph, workload), workload)
