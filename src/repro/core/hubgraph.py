"""Hub-graph construction (paper section 3.1, Figure 3).

A *hub-graph* ``G(X, w, Y)`` centered on a node ``w`` consists of

* a producer side ``X`` ⊆ predecessors of ``w`` (users ``w`` subscribes to),
* a consumer side ``Y`` ⊆ successors of ``w`` (users subscribing to ``w``),
* the solid legs ``x -> w`` (candidate pushes) and ``w -> y`` (candidate
  pulls), and
* the *cross-edges* ``x -> y`` present in the social graph, which the hub
  covers indirectly once both legs are scheduled.

CHITCHAT's oracle searches inside the *maximal* hub-graph (all predecessors
and successors) for the weighted-densest subgraph; PARALLELNOSY restricts
itself to single-consumer hub-graphs ``G(X, w, {y})``.

Because a node can be both a predecessor and a successor of ``w`` (mutual
follows), hub-graph vertices are role-tagged ``(side, node)`` pairs: the same
user contributes an X-vertex weighted by its production rate and an
independent Y-vertex weighted by its consumption rate.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.schedule import RequestSchedule
from repro.graph.digraph import Edge, Node, SocialGraph
from repro.workload.rates import Workload

#: Role tags for hub-graph vertices.
X_SIDE = "x"
Y_SIDE = "y"

HubVertex = tuple[str, Node]


@dataclass
class HubGraph:
    """Materialized maximal hub-graph centered on ``hub``.

    Attributes
    ----------
    hub:
        The relay node ``w``.
    x_nodes, y_nodes:
        Producer-side and consumer-side node lists.
    cross_edges:
        Social edges ``x -> y`` between the two sides (possibly truncated to
        the ``max_cross_edges`` bound, mirroring the MapReduce bound ``b``).
    truncated:
        True when the cross-edge bound clipped the enumeration.
    """

    hub: Node
    x_nodes: list[Node]
    y_nodes: list[Node]
    cross_edges: list[Edge]
    truncated: bool = False

    @property
    def num_vertices(self) -> int:
        """Vertices excluding the hub itself (which has zero weight)."""
        return len(self.x_nodes) + len(self.y_nodes)

    def elements(self) -> list[Edge]:
        """All social edges this hub-graph can serve (legs + cross-edges)."""
        legs_in = [(x, self.hub) for x in self.x_nodes]
        legs_out = [(self.hub, y) for y in self.y_nodes]
        return legs_in + legs_out + list(self.cross_edges)

    def vertex_weight(
        self,
        vertex: HubVertex,
        workload: Workload,
        schedule: RequestSchedule,
    ) -> float:
        """The set-cover weight ``g`` of a hub-graph vertex.

        ``g(x) = rp(x)`` unless the push ``x -> w`` is already paid for
        (``∈ H``), and ``g(y) = rc(y)`` unless the pull ``w -> y`` is already
        paid for (``∈ L``) — exactly the weight updates of Algorithm 1.
        """
        side, node = vertex
        if side == X_SIDE:
            if (node, self.hub) in schedule.push:
                return 0.0
            return workload.rp(node)
        if (self.hub, node) in schedule.pull:
            return 0.0
        return workload.rc(node)


def build_hub_graph(
    graph: SocialGraph,
    hub: Node,
    max_cross_edges: int | None = None,
) -> HubGraph:
    """Materialize the maximal hub-graph centered on ``hub``.

    Parameters
    ----------
    max_cross_edges:
        Optional cap on enumerated cross-edges, the counterpart of the
        paper's MapReduce bound ``b`` (section 3.2): hubs of very dense
        graphs can have quadratically many cross-edges, so production runs
        bound the enumeration and accept missing some optimization
        opportunities.  ``None`` means unbounded.

    Notes
    -----
    Cross-edge enumeration iterates, for each producer ``x``, over the
    smaller of ``successors(x)`` and ``Y`` — the same neighborhood
    intersection the MapReduce job performs with ``x``'s out-list shipped to
    the hub's reducer.
    """
    x_nodes = sorted(graph.predecessors_view(hub), key=repr)
    y_nodes = sorted(graph.successors_view(hub), key=repr)
    y_set = set(y_nodes)
    cross: list[Edge] = []
    truncated = False
    for x in x_nodes:
        succ = graph.successors_view(x)
        if len(succ) <= len(y_set):
            hits = [y for y in succ if y in y_set and y != x]
        else:
            hits = [y for y in y_set if y in succ and y != x]
        for y in sorted(hits, key=repr):
            if max_cross_edges is not None and len(cross) >= max_cross_edges:
                truncated = True
                break
            cross.append((x, y))
        if truncated:
            break
    return HubGraph(
        hub=hub, x_nodes=x_nodes, y_nodes=y_nodes, cross_edges=cross, truncated=truncated
    )


def single_consumer_hub_graph(
    graph: SocialGraph,
    hub: Node,
    consumer: Node,
    schedule: RequestSchedule,
    covered: dict[Edge, Node],
) -> list[Node]:
    """The producer set ``X`` of PARALLELNOSY's hub-graph ``G(X, w, {y})``.

    Selection conditions from section 3.2, phase 1:

    * ``x -> w`` must not already be covered through some other hub
      (pushing over it would undo a previous optimization);
    * the cross-edge ``x -> y`` must exist and be neither covered nor
      already scheduled as a push or pull (covering it again is useless).
    """
    preds_w = graph.predecessors_view(hub)
    preds_y = graph.predecessors_view(consumer)
    if len(preds_y) <= len(preds_w):
        candidates = (x for x in preds_y if x in preds_w)
    else:
        candidates = (x for x in preds_w if x in preds_y)
    xs: list[Node] = []
    for x in candidates:
        if x == consumer:
            continue
        if (x, hub) in covered:
            continue
        cross = (x, consumer)
        if cross in covered or cross in schedule.push or cross in schedule.pull:
            continue
        xs.append(x)
    xs.sort(key=repr)
    return xs
