"""Hub-graph construction (paper section 3.1, Figure 3).

A *hub-graph* ``G(X, w, Y)`` centered on a node ``w`` consists of

* a producer side ``X`` ⊆ predecessors of ``w`` (users ``w`` subscribes to),
* a consumer side ``Y`` ⊆ successors of ``w`` (users subscribing to ``w``),
* the solid legs ``x -> w`` (candidate pushes) and ``w -> y`` (candidate
  pulls), and
* the *cross-edges* ``x -> y`` present in the social graph, which the hub
  covers indirectly once both legs are scheduled.

CHITCHAT's oracle searches inside the *maximal* hub-graph (all predecessors
and successors) for the weighted-densest subgraph; PARALLELNOSY restricts
itself to single-consumer hub-graphs ``G(X, w, {y})``.

Because a node can be both a predecessor and a successor of ``w`` (mutual
follows), hub-graph vertices are role-tagged ``(side, node)`` pairs: the same
user contributes an X-vertex weighted by its production rate and an
independent Y-vertex weighted by its consumption rate.

Construction is backend-dispatched through the
:class:`~repro.graph.view.GraphView` protocol.  On the dict backend the
cross-edge enumeration intersects Python neighbor sets per producer; on the
CSR backend one vectorized kernel scans the concatenated successor slices of
all of ``X`` against the sorted ``Y`` slice, and records each cross-edge's
global CSR edge id so the densest-subgraph oracle can filter elements
against the scheduler's uncovered-edge bitmask without touching Python sets.
Both paths produce identical hub-graphs (same canonical ordering, truncation
behavior, and Python-int node ids) — property-tested in
``tests/test_graphview.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.schedule import RequestSchedule
from repro.graph.csr import CSRGraph
from repro.graph.digraph import Edge, Node, SocialGraph
from repro.graph.view import GraphView, NeighborSetCache, sorted_array_intersect
from repro.workload.rates import Workload

#: Role tags for hub-graph vertices.
X_SIDE = "x"
Y_SIDE = "y"

HubVertex = tuple[str, Node]


@dataclass(frozen=True)
class PeelIndex:
    """Static per-hub-graph structure reused by every oracle call.

    ``verts`` lists the weighted vertices X side first (in ``x_nodes``
    order) then Y side, so leg element ``i`` touches exactly vertex ``i``.
    ``inc_vert``/``inc_elem`` are the flattened (vertex, element) incidence
    pairs for vectorized degree counting; ``assign_vert[e]`` /
    ``assign_alt[e]`` are the primary and alternate vertices element ``e``
    can be *charged* to by the oracle's early-exit relaxation (legs touch
    one vertex, so both are that vertex; a cross-edge's primary is its X
    endpoint and alternate its Y endpoint — the probe reroutes charge away
    from zero-weight endpoints); ``x_arr``/``y_arr`` are the side node ids
    as int64 arrays (CSR builds only, else ``None``).
    """

    verts: list[HubVertex]
    endpoint_idx: list[tuple[int, ...]]
    incident: list[list[int]]
    inc_vert: np.ndarray
    inc_elem: np.ndarray
    assign_vert: np.ndarray
    assign_alt: np.ndarray
    assign_vert_list: list[int]
    assign_alt_list: list[int]
    x_arr: np.ndarray | None
    y_arr: np.ndarray | None


@dataclass
class HubGraph:
    """Materialized maximal hub-graph centered on ``hub``.

    Attributes
    ----------
    hub:
        The relay node ``w``.
    x_nodes, y_nodes:
        Producer-side and consumer-side node lists.
    cross_edges:
        Social edges ``x -> y`` between the two sides (possibly truncated to
        the ``max_cross_edges`` bound, mirroring the MapReduce bound ``b``).
    truncated:
        True when the cross-edge bound clipped the enumeration.
    element_ids:
        Global CSR edge ids of the elements in :meth:`element_index` order,
        populated only by CSR-backed construction.  Lets the oracle filter
        elements against a dense uncovered-edge mask in one vectorized op.
    """

    hub: Node
    x_nodes: list[Node]
    y_nodes: list[Node]
    cross_edges: list[Edge]
    truncated: bool = False
    element_ids: np.ndarray | None = field(default=None, repr=False, compare=False)
    _element_index: list[tuple[Edge, tuple[HubVertex, ...]]] | None = field(
        default=None, repr=False, compare=False
    )
    _peel_index: "PeelIndex | None" = field(default=None, repr=False, compare=False)

    @property
    def num_vertices(self) -> int:
        """Vertices excluding the hub itself (which has zero weight)."""
        return len(self.x_nodes) + len(self.y_nodes)

    def elements(self) -> list[Edge]:
        """All social edges this hub-graph can serve (legs + cross-edges)."""
        legs_in = [(x, self.hub) for x in self.x_nodes]
        legs_out = [(self.hub, y) for y in self.y_nodes]
        return legs_in + legs_out + list(self.cross_edges)

    def element_index(self) -> list[tuple[Edge, tuple[HubVertex, ...]]]:
        """Elements paired with their weighted endpoints, built once.

        Canonical order: push legs (``x_nodes`` order), pull legs
        (``y_nodes`` order), then cross-edges.  A leg touches its single
        side vertex; a cross-edge touches one X- and one Y-vertex.  Aligned
        with :attr:`element_ids` when the CSR build populated them.
        """
        if self._element_index is None:
            index: list[tuple[Edge, tuple[HubVertex, ...]]] = [
                ((x, self.hub), ((X_SIDE, x),)) for x in self.x_nodes
            ]
            index += [((self.hub, y), ((Y_SIDE, y),)) for y in self.y_nodes]
            index += [
                ((x, y), ((X_SIDE, x), (Y_SIDE, y))) for x, y in self.cross_edges
            ]
            self._element_index = index
        return self._element_index

    def peel_index(self) -> "PeelIndex":
        """Static peeling structure for the densest-subgraph oracle.

        Built once per hub-graph and reused by every oracle call (the
        CHITCHAT schedulers cache hub-graphs for exactly this reason): the
        vertex list (X side then Y side, aligned so leg element ``i``
        touches vertex ``i``), per-element endpoint indices, per-vertex
        static incidence lists, and the flat incidence arrays the
        vectorized degree computation bincounts over.
        """
        if self._peel_index is None:
            index = self.element_index()
            verts: list[HubVertex] = [(X_SIDE, x) for x in self.x_nodes]
            verts += [(Y_SIDE, y) for y in self.y_nodes]
            vert_pos = {v: i for i, v in enumerate(verts)}
            endpoint_idx = [
                tuple(vert_pos[v] for v in endpoints) for _, endpoints in index
            ]
            incident: list[list[int]] = [[] for _ in verts]
            for ei, idxs in enumerate(endpoint_idx):
                for i in idxs:
                    incident[i].append(ei)
            pairs = [
                (i, ei) for ei, idxs in enumerate(endpoint_idx) for i in idxs
            ]
            inc_vert = np.asarray([i for i, _ in pairs], dtype=np.int64)
            inc_elem = np.asarray([ei for _, ei in pairs], dtype=np.int64)
            assign_vert_list = [idxs[0] for idxs in endpoint_idx]
            assign_alt_list = [idxs[-1] for idxs in endpoint_idx]
            assign_vert = np.asarray(assign_vert_list, dtype=np.int64)
            assign_alt = np.asarray(assign_alt_list, dtype=np.int64)
            if self.element_ids is not None:  # CSR build: integer node ids
                x_arr = np.asarray(self.x_nodes, dtype=np.int64)
                y_arr = np.asarray(self.y_nodes, dtype=np.int64)
            else:
                x_arr = y_arr = None
            self._peel_index = PeelIndex(
                verts,
                endpoint_idx,
                incident,
                inc_vert,
                inc_elem,
                assign_vert,
                assign_alt,
                assign_vert_list,
                assign_alt_list,
                x_arr,
                y_arr,
            )
        return self._peel_index

    def vertex_weight(
        self,
        vertex: HubVertex,
        workload: Workload,
        schedule: RequestSchedule,
    ) -> float:
        """The set-cover weight ``g`` of a hub-graph vertex.

        ``g(x) = rp(x)`` unless the push ``x -> w`` is already paid for
        (``∈ H``), and ``g(y) = rc(y)`` unless the pull ``w -> y`` is already
        paid for (``∈ L``) — exactly the weight updates of Algorithm 1.
        """
        side, node = vertex
        if side == X_SIDE:
            if (node, self.hub) in schedule.push:
                return 0.0
            return workload.rp(node)
        if (self.hub, node) in schedule.pull:
            return 0.0
        return workload.rc(node)


def build_hub_graph(
    graph: GraphView,
    hub: Node,
    max_cross_edges: int | None = None,
) -> HubGraph:
    """Materialize the maximal hub-graph centered on ``hub``.

    Parameters
    ----------
    graph:
        Either backend; the CSR backend uses the vectorized kernel.
    max_cross_edges:
        Optional cap on enumerated cross-edges, the counterpart of the
        paper's MapReduce bound ``b`` (section 3.2): hubs of very dense
        graphs can have quadratically many cross-edges, so production runs
        bound the enumeration and accept missing some optimization
        opportunities.  ``None`` means unbounded.

    Notes
    -----
    Cross-edge enumeration on the dict backend iterates, for each producer
    ``x``, over the smaller of ``successors(x)`` and ``Y`` — the same
    neighborhood intersection the MapReduce job performs with ``x``'s
    out-list shipped to the hub's reducer.  The CSR backend instead scans
    the concatenated successor slices of all producers against the sorted
    ``Y`` slice in one numpy pass.
    """
    if isinstance(graph, CSRGraph):
        return _build_hub_graph_csr(graph, hub, max_cross_edges)
    return _build_hub_graph_dict(graph, hub, max_cross_edges)


def _build_hub_graph_dict(
    graph: SocialGraph,
    hub: Node,
    max_cross_edges: int | None,
) -> HubGraph:
    """Per-producer set-intersection construction (dict backend)."""
    x_nodes = sorted(graph.predecessors_view(hub), key=repr)
    y_nodes = sorted(graph.successors_view(hub), key=repr)
    y_set = set(y_nodes)
    cross: list[Edge] = []
    truncated = False
    for x in x_nodes:
        succ = graph.successors_view(x)
        if len(succ) <= len(y_set):
            hits = [y for y in succ if y in y_set and y != x]
        else:
            hits = [y for y in y_set if y in succ and y != x]
        for y in sorted(hits, key=repr):
            if max_cross_edges is not None and len(cross) >= max_cross_edges:
                truncated = True
                break
            cross.append((x, y))
        if truncated:
            break
    return HubGraph(
        hub=hub, x_nodes=x_nodes, y_nodes=y_nodes, cross_edges=cross, truncated=truncated
    )


def _build_hub_graph_csr(
    graph: CSRGraph,
    hub: Node,
    max_cross_edges: int | None,
) -> HubGraph:
    """Vectorized construction on the CSR snapshot.

    One kernel scans the concatenated successor slices of every producer
    against the sorted consumer slice; the flat positions of the hits *are*
    their global edge ids, captured into :attr:`HubGraph.element_ids`
    together with the leg ids.  Output ordering matches the dict path
    exactly (producers and, per producer, consumers in ``repr`` order) so
    truncation clips the same prefix on both backends.
    """
    hub = int(hub)
    x_arr = graph.predecessors(hub)
    y_arr = graph.successors(hub)
    x_nodes = sorted(x_arr.tolist(), key=repr)
    y_nodes = sorted(y_arr.tolist(), key=repr)

    indptr = graph.out_indptr
    starts = indptr[x_arr]
    counts = indptr[x_arr + 1] - starts
    total = int(counts.sum())
    cross: list[Edge] = []
    cross_ids: list[int] = []
    truncated = False
    x_leg_ids: dict[int, int] = {}
    if total:
        # flat positions of every producer's successor slice in out_indices;
        # a position in out_indices is the edge's global id
        group_ends = np.cumsum(counts)
        within = np.arange(total, dtype=np.int64) - np.repeat(
            group_ends - counts, counts
        )
        positions = np.repeat(starts, counts) + within
        cand_x = np.repeat(x_arr, counts)
        cand_y = graph.out_indices[positions]
        # x-leg ids fall out of the same scan: the hits where y == hub
        leg_mask = cand_y == hub
        x_leg_ids = dict(
            zip(cand_x[leg_mask].tolist(), positions[leg_mask].tolist())
        )
        if y_arr.size:
            slot = np.searchsorted(y_arr, cand_y)
            slot_clipped = np.minimum(slot, y_arr.size - 1)
            hit = y_arr[slot_clipped] == cand_y
            xs = cand_x[hit].tolist()
            ys = cand_y[hit].tolist()
            ids = positions[hit].tolist()
            x_rank = {x: i for i, x in enumerate(x_nodes)}
            order = sorted(
                range(len(xs)), key=lambda i: (x_rank[xs[i]], repr(ys[i]))
            )
            if max_cross_edges is not None and len(order) > max_cross_edges:
                truncated = True
                order = order[:max_cross_edges]
            cross = [(xs[i], ys[i]) for i in order]
            cross_ids = [ids[i] for i in order]

    y_slice_start = int(indptr[hub])
    y_leg_ids = (
        y_slice_start + np.searchsorted(y_arr, np.asarray(y_nodes, dtype=np.int64))
    ).tolist()
    element_ids = np.asarray(
        [x_leg_ids[x] for x in x_nodes] + y_leg_ids + cross_ids, dtype=np.int64
    )
    return HubGraph(
        hub=hub,
        x_nodes=x_nodes,
        y_nodes=y_nodes,
        cross_edges=cross,
        truncated=truncated,
        element_ids=element_ids,
    )


def single_consumer_hub_graph(
    graph: GraphView,
    hub: Node,
    consumer: Node,
    schedule: RequestSchedule,
    covered: dict[Edge, Node],
    adjacency: NeighborSetCache | None = None,
) -> list[Node]:
    """The producer set ``X`` of PARALLELNOSY's hub-graph ``G(X, w, {y})``.

    Selection conditions from section 3.2, phase 1:

    * ``x -> w`` must not already be covered through some other hub
      (pushing over it would undo a previous optimization);
    * the cross-edge ``x -> y`` must exist and be neither covered nor
      already scheduled as a push or pull (covering it again is useless).

    ``adjacency`` optionally supplies a
    :class:`~repro.graph.view.NeighborSetCache`; callers probing many
    edges (PARALLELNOSY's phase 1 scans every edge per iteration) pass one
    so repeated neighborhoods are materialized as Python sets once.
    """
    if adjacency is not None:
        preds_w = adjacency.predecessors(hub)
        preds_y = adjacency.predecessors(consumer)
        if len(preds_y) <= len(preds_w):
            candidates: list[Node] = [x for x in preds_y if x in preds_w]
        else:
            candidates = [x for x in preds_w if x in preds_y]
    elif isinstance(graph, CSRGraph):
        candidates = sorted_array_intersect(
            graph.predecessors(hub), graph.predecessors(consumer)
        )
    else:
        preds_w = graph.predecessors_view(hub)
        preds_y = graph.predecessors_view(consumer)
        if len(preds_y) <= len(preds_w):
            candidates = [x for x in preds_y if x in preds_w]
        else:
            candidates = [x for x in preds_w if x in preds_y]
    xs: list[Node] = []
    for x in candidates:
        if x == consumer:
            continue
        if (x, hub) in covered:
            continue
        cross = (x, consumer)
        if cross in covered or cross in schedule.push or cross in schedule.pull:
            continue
        xs.append(x)
    xs.sort(key=repr)
    return xs
