"""Delta scheduling under churn: localized repair of a CHITCHAT run.

:class:`~repro.core.incremental.IncrementalMaintainer` implements the
paper's production rule (section 3.3) exactly: new and broken edges are
served directly and never re-piggybacked, so schedule quality decays
until a full re-run.  :class:`DeltaScheduler` closes that gap.  It wraps
a completed :class:`~repro.core.chitchat.ChitchatScheduler` run and, on
every edge insert/delete or rate-change event, repairs *only the dirtied
region* of the schedule — re-running the greedy SET-COVER step over just
the re-opened elements instead of the whole edge set.

Event application (constant amortized bookkeeping per event)
------------------------------------------------------------
Events first apply the incremental maintainer's feasibility-preserving
rules — a new edge is served directly by the hybrid rule, a removed leg
downgrades the covers relayed over it — while accumulating a *residue*:
the set of edges whose current direct service might be improvable
(fresh direct serves, downgraded covers, legs freed when their last
cover disappeared, and direct edges incident to a re-priced user).
Duplicate adds, removals of absent edges, and value-identical rate
events are counted no-ops and touch nothing, so a no-op stream leaves
the schedule byte-identical.

Localized repair (the greedy over the dirtied region)
-----------------------------------------------------
:meth:`DeltaScheduler.repair` turns the residue into the *element set*
(residue edges that still exist, are direct-served, and are not load-
bearing legs of a live cover — a refcount per leg guards that), strips
their direct service, and re-runs the CHITCHAT greedy over exactly those
elements.  Candidate hubs are the elements' endpoints and wedge
intermediaries: a hub outside that set has **no re-opened element in its
hub-graph**, so its oracle champion over the element set is empty and
its existing assignments provably survive the event — that structural
certificate is what bounds per-event work, the E16 bench's headline.
(The lazy heap's end-of-run bound certificates are *not* reused here:
uncovering elements can lower a champion's cost below its certified
lower bound, which is exactly the direction the certificates do not
cover.)  Candidate champions come from the same pluggable oracle stack
as the full run — the factor-2 peel or the warm
:class:`~repro.flow.exact_oracle.ExactOracle` session, whose compiled
per-hub flow networks persist across repairs; dirtied hubs are
cold-restarted once per repair (:meth:`ExactOracle.invalidate` — the
repair's element set re-opens coverage non-monotonically, breaking the
warm diff's contract) and then repair their preflows warmly across the
repair's own monotone covering sequence.

Invariants (asserted by ``tests/test_delta_schedule.py``)
---------------------------------------------------------
* **Feasibility** — after every ``apply`` and every ``repair`` the
  schedule serves every live edge (events direct-serve before repair
  re-optimizes; singletons are always available to the repair greedy).
* **Monotone repair** — a greedy step is taken only at cost per element
  at most the cheapest remaining singleton, so each repaired element is
  charged at most its own hybrid price: ``repair`` never costs more
  than leaving the residue served directly.
* **Bounded locality** — oracle work per repair touches only the
  elements' endpoint/wedge hubs.
* **Exact cost tracking** — :meth:`cost` is maintained incrementally
  (O(degree) per rate event, O(1) per service change) and equals the
  full rescan.
"""

from __future__ import annotations

import heapq
import math

from repro.core.densest import DensestResult, densest_subgraph
from repro.core.hubgraph import HubGraph, build_hub_graph
from repro.core.schedule import RequestSchedule
from repro.errors import ScheduleError, WorkloadError
from repro.flow.exact_oracle import ExactOracle, use_exact, validate_oracle_mode
from repro.graph.digraph import Edge, Node, SocialGraph
from repro.graph.view import edge_list
from repro.obs import trace
from repro.obs.metrics import MetricsRegistry, StatsView
from repro.workload.churn import ChurnEvent
from repro.workload.rates import Workload

__all__ = ["DeltaScheduler", "DeltaStats"]


class DeltaStats(StatsView):
    """Diagnostics of a delta-maintenance run.

    Event counters: ``events_applied`` (every ``apply`` call),
    ``edges_added``/``edges_removed``/``rate_changes`` (effective events
    by kind), ``noop_events`` (duplicate adds, removals of absent edges,
    value-identical rate events), ``covers_broken`` (piggybacked edges
    downgraded to direct service by a removed leg), ``legs_freed``
    (push/pull legs whose last dependent cover disappeared, re-opened
    for optimization).

    Repair counters: ``repairs`` (``repair`` calls), ``elements_reopened``
    (direct-served edges the repairs re-optimized), ``hub_refreshes`` —
    oracle champion evaluations during repair, the E16 bounded-re-work
    metric (compare a from-scratch run's ``oracle_calls``) — of which
    ``exact_refreshes`` went through the parametric max-flow oracle;
    ``sessions_invalidated`` — warm flow sessions cold-restarted because
    a repair re-opened coverage under their hubs; ``hub_selections`` /
    ``singleton_selections`` — greedy choices made by repairs.

    ``maintained_cost`` is the incrementally tracked schedule cost after
    the latest event/repair (equals the full rescan; property-tested).
    """

    _FIELDS = {
        "events_applied": (("events_applied",), "counter"),
        "edges_added": (("edges_added",), "counter"),
        "edges_removed": (("edges_removed",), "counter"),
        "rate_changes": (("rate_changes",), "counter"),
        "noop_events": (("noop_events",), "counter"),
        "covers_broken": (("covers_broken",), "counter"),
        "legs_freed": (("legs_freed",), "counter"),
        "repairs": (("repairs",), "counter"),
        "elements_reopened": (("elements_reopened",), "counter"),
        "hub_refreshes": (("hub_refreshes",), "counter"),
        "exact_refreshes": (("exact_refreshes",), "counter"),
        "hub_selections": (("hub_selections",), "counter"),
        "singleton_selections": (("singleton_selections",), "counter"),
        "sessions_invalidated": (("sessions_invalidated",), "counter"),
        "maintained_cost": (("maintained_cost",), "gauge"),
    }


class DeltaScheduler:
    """Maintains a near-greedy schedule over a mutating instance.

    The scheduler owns the graph, rates, and schedule it is given (pass
    copies to keep the originals): mutate them only through
    :meth:`apply` / :meth:`repair` so the reverse indexes, leg
    refcounts, and the running cost stay consistent.

    Parameters
    ----------
    graph:
        Mutable :class:`~repro.graph.digraph.SocialGraph` (CSR runs
        convert via :meth:`from_scheduler`).
    workload:
        Rates at wrap time; the scheduler keeps its own mutable copy —
        rate events re-price it, and users first seen mid-stream enter
        at the initial minimum positive rates (the
        :class:`~repro.core.incremental.IncrementalMaintainer` floor
        rule).
    schedule:
        A feasible schedule for ``graph`` (validated unless
        ``validate=False``), typically a completed CHITCHAT run's.
    oracle, warm, method, max_cross_edges:
        The repair greedy's oracle stack, with the same semantics as on
        :class:`~repro.core.chitchat.ChitchatScheduler`: ``"peel"``
        (default), ``"exact"`` (warm parametric max-flow sessions), or
        ``"auto"``.
    """

    def __init__(
        self,
        graph: SocialGraph,
        workload: Workload,
        schedule: RequestSchedule,
        oracle: str = "peel",
        warm: bool = True,
        method: str = "auto",
        max_cross_edges: int | None = None,
        validate: bool = True,
    ) -> None:
        self.graph = graph
        self.schedule = schedule
        self.max_cross_edges = max_cross_edges
        if validate and not schedule.is_feasible(graph):
            raise ScheduleError(
                "DeltaScheduler requires a feasible schedule to wrap"
            )
        #: Live rate tables; ``self.workload`` is a view over them, so
        #: rate events mutate in place and every oracle call sees the
        #: current prices.  (Never call ``as_arrays`` on this workload —
        #: the dense cache would freeze the mutable rates.)
        self._production: dict[Node, float] = dict(workload.production)
        self._consumption: dict[Node, float] = dict(workload.consumption)
        self.workload = Workload(
            production=self._production, consumption=self._consumption
        )
        self._rp_floor = min(
            (r for r in self._production.values() if r > 0), default=1.0
        )
        self._rc_floor = min(
            (r for r in self._consumption.values() if r > 0), default=1.0
        )
        # reverse index of hub_cover plus a per-leg refcount: a direct
        # edge that doubles as a live cover's leg cannot be re-opened
        # (dropping its push/pull would break the cover for zero gain)
        self._by_hub: dict[Node, set[Edge]] = {}
        self._leg_need: dict[Edge, int] = {}
        for edge, hub in schedule.hub_cover.items():
            self._by_hub.setdefault(hub, set()).add(edge)
            self._bump_leg((edge[0], hub))
            self._bump_leg((hub, edge[1]))
        self._cost = sum(self._rp(u) for u, _v in schedule.push) + sum(
            self._rc(v) for _u, v in schedule.pull
        )
        #: Direct-served edges whose assignment an event may have left
        #: improvable; consumed (and re-screened) by :meth:`repair`.
        self._residue: set[Edge] = set()
        self._oracle_mode = validate_oracle_mode(oracle)
        self.metrics = MetricsRegistry()
        self.stats = DeltaStats(node=self.metrics.node("delta"))
        self._exact = (
            ExactOracle(
                warm=warm,
                method=method,
                metrics=self.metrics.node("delta", "oracle"),
            )
            if oracle != "peel"
            else None
        )
        self.stats.maintained_cost = self._cost

    @classmethod
    def from_scheduler(cls, scheduler, **options) -> "DeltaScheduler":
        """Wrap a completed scheduler run (any graph backend).

        Copies the run's graph into a mutable :class:`SocialGraph` and
        deep-copies the schedule, so the wrapped run's own state stays
        untouched.  ``options`` forward to the constructor.
        """
        graph = SocialGraph(edge_list(scheduler.graph))
        return cls(
            graph,
            scheduler.workload,
            scheduler.schedule.copy(),
            **options,
        )

    # ------------------------------------------------------------------
    # Rate access and cost-tracked schedule mutation
    # ------------------------------------------------------------------
    def _rp(self, user: Node) -> float:
        rate = self._production.get(user)
        return self._rp_floor if rate is None else rate

    def _rc(self, user: Node) -> float:
        rate = self._consumption.get(user)
        return self._rc_floor if rate is None else rate

    def _ensure_user(self, user: Node) -> None:
        if user not in self._production:
            self._production[user] = self._rp_floor
            self._consumption[user] = self._rc_floor

    def _add_push(self, edge: Edge) -> None:
        if edge not in self.schedule.push:
            self.schedule.push.add(edge)
            self._cost += self._rp(edge[0])

    def _add_pull(self, edge: Edge) -> None:
        if edge not in self.schedule.pull:
            self.schedule.pull.add(edge)
            self._cost += self._rc(edge[1])

    def _remove_push(self, edge: Edge) -> None:
        if edge in self.schedule.push:
            self.schedule.push.discard(edge)
            self._cost -= self._rp(edge[0])

    def _remove_pull(self, edge: Edge) -> None:
        if edge in self.schedule.pull:
            self.schedule.pull.discard(edge)
            self._cost -= self._rc(edge[1])

    def _serve_directly(self, edge: Edge) -> None:
        if edge in self.schedule.push or edge in self.schedule.pull:
            return  # already served directly (e.g. as another cover's leg)
        u, v = edge
        if self._rp(u) <= self._rc(v):
            self._add_push(edge)
        else:
            self._add_pull(edge)

    # ------------------------------------------------------------------
    # Leg refcounts
    # ------------------------------------------------------------------
    def _bump_leg(self, leg: Edge) -> None:
        self._leg_need[leg] = self._leg_need.get(leg, 0) + 1

    def _drop_leg(self, leg: Edge) -> None:
        count = self._leg_need.get(leg, 0) - 1
        if count > 0:
            self._leg_need[leg] = count
            return
        self._leg_need.pop(leg, None)
        # the leg edge itself (if still a live social edge) stays served
        # by its push/pull but no cover depends on it anymore — it can be
        # re-opened for cheaper service through some other hub
        if self.graph.has_edge(*leg) and (
            leg in self.schedule.push or leg in self.schedule.pull
        ):
            self._residue.add(leg)
            self.stats.legs_freed += 1

    def _release_cover(self, edge: Edge, hub: Node) -> None:
        """Drop ``edge``'s cover through ``hub`` and unpin its legs."""
        self.schedule.hub_cover.pop(edge, None)
        covered = self._by_hub.get(hub)
        if covered is not None:
            covered.discard(edge)
        self._drop_leg((edge[0], hub))
        self._drop_leg((hub, edge[1]))

    # ------------------------------------------------------------------
    # Event application
    # ------------------------------------------------------------------
    def apply(self, event: ChurnEvent) -> bool:
        """Apply one churn event; returns whether anything changed.

        Feasibility is restored immediately (direct service); quality
        recovery is deferred to :meth:`repair`.  No-op events (duplicate
        adds, removals of absent edges, value-identical rate events)
        change nothing at all — a stream of them leaves the schedule
        byte-identical.
        """
        with trace.span("delta.event") as span:
            span.set(kind=event.kind)
            if event.kind == "add":
                changed = self._apply_add(event.edge)
            elif event.kind == "remove":
                changed = self._apply_remove(event.edge)
            elif event.kind == "rate":
                changed = self._apply_rate(event.user, event.rp, event.rc)
            else:  # pragma: no cover - ChurnEvent validates kinds
                raise WorkloadError(f"unknown event kind {event.kind!r}")
            self.stats.events_applied += 1
            if not changed:
                self.stats.noop_events += 1
            else:
                self.stats.maintained_cost = self._cost
            span.set(changed=changed)
        return changed

    def apply_events(self, events, repair_every: int = 1) -> RequestSchedule:
        """Apply a stream, repairing every ``repair_every`` events.

        ``repair_every=0`` disables intermediate repairs; a final
        :meth:`repair` always runs, so the returned schedule is the
        fully maintained one.
        """
        if repair_every < 0:
            raise WorkloadError(
                f"repair_every must be >= 0, got {repair_every}"
            )
        for index, event in enumerate(events, start=1):
            self.apply(event)
            if repair_every and index % repair_every == 0:
                self.repair()
        self.repair()
        return self.schedule

    def _apply_add(self, edge: Edge) -> bool:
        u, v = edge
        if self.graph.has_edge(u, v):
            return False
        self._ensure_user(u)
        self._ensure_user(v)
        self.graph.add_edge(u, v)
        self.stats.edges_added += 1
        self._serve_directly(edge)
        self._residue.add(edge)
        return True

    def _apply_remove(self, edge: Edge) -> bool:
        u, v = edge
        if not self.graph.has_edge(u, v):
            return False
        self.graph.remove_edge(u, v)
        self.stats.edges_removed += 1
        self._residue.discard(edge)
        # the edge itself no longer needs service
        self._remove_push(edge)
        self._remove_pull(edge)
        if edge in self.schedule.hub_cover:
            self._release_cover(edge, self.schedule.hub_cover[edge])
        # covers relayed over this edge break: the edge was the push leg
        # (v acting as hub) or the pull leg (u acting as hub)
        broken: list[tuple[Edge, Node]] = []
        for covered in self._by_hub.get(v, ()):
            if covered[0] == u:
                broken.append((covered, v))
        for covered in self._by_hub.get(u, ()):
            if covered[1] == v:
                broken.append((covered, u))
        for covered, hub in broken:
            self._release_cover(covered, hub)
            self.stats.covers_broken += 1
            self._serve_directly(covered)
            self._residue.add(covered)
        return True

    def _apply_rate(self, user: Node, rp: float, rc: float) -> bool:
        self._ensure_user(user)
        old_rp = self._production[user]
        old_rc = self._consumption[user]
        if rp == old_rp and rc == old_rc:
            return False
        self.stats.rate_changes += 1
        # O(degree): re-price the user's scheduled legs and re-open its
        # direct-served incident edges (covers are free and stay put)
        push_out = 0
        pull_in = 0
        if user in self.graph:
            for succ in self.graph.successors_view(user):
                edge = (user, succ)
                in_push = edge in self.schedule.push
                if in_push:
                    push_out += 1
                if in_push or edge in self.schedule.pull:
                    self._residue.add(edge)
            for pred in self.graph.predecessors_view(user):
                edge = (pred, user)
                in_pull = edge in self.schedule.pull
                if in_pull:
                    pull_in += 1
                if in_pull or edge in self.schedule.push:
                    self._residue.add(edge)
        self._cost += (rp - old_rp) * push_out + (rc - old_rc) * pull_in
        self._production[user] = rp
        self._consumption[user] = rc
        return True

    # ------------------------------------------------------------------
    # Localized repair
    # ------------------------------------------------------------------
    def repair(self) -> int:
        """Re-optimize the residue; returns the number of elements re-opened.

        Strips the direct service of every re-openable residue edge and
        re-runs the greedy SET-COVER step over exactly that element set,
        with candidate hubs restricted to the elements' endpoints and
        wedge intermediaries (no other hub's champion can cover a
        re-opened element).  Each greedy step is charged at most the
        cheapest remaining singleton, so the repaired assignment never
        costs more than the direct service it replaces.
        """
        with trace.span("delta.repair") as span:
            self.stats.repairs += 1
            elements = [
                edge
                for edge in self._residue
                if self.graph.has_edge(*edge)
                and self._leg_need.get(edge, 0) == 0
                and edge not in self.schedule.hub_cover
                and (edge in self.schedule.push or edge in self.schedule.pull)
            ]
            self._residue.clear()
            refreshes_before = self.stats.hub_refreshes
            if elements:
                self._repair_elements(elements)
                self.stats.maintained_cost = self._cost
            span.set(
                elements=len(elements),
                refreshes=self.stats.hub_refreshes - refreshes_before,
            )
        return len(elements)

    def _repair_elements(self, elements: list[Edge]) -> None:
        self.stats.elements_reopened += len(elements)
        for edge in elements:
            self._remove_push(edge)
            self._remove_pull(edge)
        uncovered: set[Edge] = set(elements)

        # candidate hubs: the locality certificate — a hub outside this
        # set has no re-opened element in its hub-graph
        candidates: set[Node] = set()
        for u, v in uncovered:
            candidates.add(u)
            candidates.add(v)
            candidates |= (
                self.graph.successors_view(u) & self.graph.predecessors_view(v)
            )
        candidates = {
            hub
            for hub in candidates
            if self.graph.in_degree(hub) > 0 and self.graph.out_degree(hub) > 0
        }
        if self._exact is not None:
            # the re-opened elements grew these hubs' coverage back —
            # non-monotonic for the warm preflow diff, so cold-restart
            # once; calls within this repair then warm-repair as usual
            for hub in candidates:
                self._exact.invalidate(hub)
            self.stats.sessions_invalidated += len(candidates)

        singletons = [
            (min(self._rp(u), self._rc(v)), repr((u, v)), (u, v))
            for u, v in uncovered
        ]
        heapq.heapify(singletons)

        hub_graphs: dict[Node, HubGraph] = {}
        version: dict[Node, int] = {}
        heap: list[tuple[float, str, Node, int, DensestResult]] = []
        for hub in sorted(candidates, key=repr):
            self._queue_champion(hub, uncovered, hub_graphs, version, heap)

        while uncovered:
            while singletons and singletons[0][2] not in uncovered:
                heapq.heappop(singletons)
            limit = singletons[0][0] if singletons else math.inf
            winner: DensestResult | None = None
            while heap:
                key, _rank, hub, ver, result = heap[0]
                if ver != version.get(hub, 0):
                    heapq.heappop(heap)
                    continue
                if key > limit:
                    break
                if not result.covered <= uncovered:
                    # a previous selection covered part of this champion:
                    # its price is stale, recompute at the current state
                    heapq.heappop(heap)
                    self._queue_champion(
                        hub, uncovered, hub_graphs, version, heap
                    )
                    continue
                winner = heapq.heappop(heap)[4]
                break
            if winner is not None:
                self._apply_repair_hub(
                    winner, uncovered, hub_graphs, version, heap, candidates
                )
            elif singletons:
                _cost, _rank, edge = heapq.heappop(singletons)
                self._apply_repair_singleton(
                    edge, uncovered, hub_graphs, version, heap, candidates
                )
            else:  # pragma: no cover - defensive; singletons always exist
                raise ScheduleError(
                    "repair ran out of candidates with elements uncovered"
                )

    def _queue_champion(
        self,
        hub: Node,
        uncovered: set[Edge],
        hub_graphs: dict[Node, HubGraph],
        version: dict[Node, int],
        heap: list,
    ) -> None:
        """(Re)compute ``hub``'s champion over the element set and queue it."""
        version[hub] = version.get(hub, 0) + 1
        if not uncovered:
            return
        hub_graph = hub_graphs.get(hub)
        if hub_graph is None:
            hub_graph = build_hub_graph(self.graph, hub, self.max_cross_edges)
            hub_graphs[hub] = hub_graph
        oracle = densest_subgraph
        exact = self._exact is not None and use_exact(
            self._oracle_mode, hub_graph
        )
        if exact:
            oracle = self._exact
        result = oracle(hub_graph, self.workload, self.schedule, uncovered)
        self.stats.hub_refreshes += 1
        if exact:
            self.stats.exact_refreshes += 1
        if result is None or not result.covered:
            return  # nothing of the element set left in this hub-graph
        heapq.heappush(
            heap,
            (result.cost_per_element, repr(hub), hub, version[hub], result),
        )

    def _apply_repair_hub(
        self,
        result: DensestResult,
        uncovered: set[Edge],
        hub_graphs: dict[Node, HubGraph],
        version: dict[Node, int],
        heap: list,
        candidates: set[Node],
    ) -> None:
        hub = result.hub
        for x in result.x_selected:
            self._add_push((x, hub))
        for y in result.y_selected:
            self._add_pull((hub, y))
        for edge in result.covered:
            u, v = edge
            if u != hub and v != hub:  # cross-edge piggybacked through hub
                self.schedule.cover_via_hub(edge, hub)
                self._by_hub.setdefault(hub, set()).add(edge)
                self._bump_leg((u, hub))
                self._bump_leg((hub, v))
        uncovered -= result.covered
        self.stats.hub_selections += 1
        # the selection paid this hub-graph's legs: its champion can only
        # get cheaper, so refresh it eagerly (other hubs' champions only
        # rise; the staleness check at the heap top re-prices them)
        if hub in candidates:
            self._queue_champion(hub, uncovered, hub_graphs, version, heap)

    def _apply_repair_singleton(
        self,
        edge: Edge,
        uncovered: set[Edge],
        hub_graphs: dict[Node, HubGraph],
        version: dict[Node, int],
        heap: list,
        candidates: set[Node],
    ) -> None:
        u, v = edge
        if self._rp(u) <= self._rc(v):
            self._add_push(edge)
            drop = v  # edge is the push leg x -> w of G(v)
        else:
            self._add_pull(edge)
            drop = u  # edge is the pull leg w -> y of G(u)
        uncovered.discard(edge)
        self.stats.singleton_selections += 1
        if drop in candidates:
            self._queue_champion(drop, uncovered, hub_graphs, version, heap)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def cost(self) -> float:
        """Current schedule cost, maintained incrementally.

        Equals ``schedule_cost(self.schedule, self.workload)`` up to
        float summation order (property-tested); rate events adjust it
        in O(degree), service changes in O(1).
        """
        return self._cost

    def pending(self) -> int:
        """Residue edges awaiting the next :meth:`repair`."""
        return len(self._residue)

    def is_feasible(self) -> bool:
        """Whether the maintained schedule serves every live edge."""
        return self.schedule.is_feasible(self.graph)
