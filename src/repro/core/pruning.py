"""Redundancy pruning of request schedules (post-optimization cleanup).

Both CHITCHAT and PARALLELNOSY can leave *redundant* memberships behind:
an edge can end up in both ``H`` and ``L`` (e.g. an early pull decision later
overlaid by a hub's push leg), or a direct push/pull can coexist with a hub
cover added later.  Dropping a membership is safe exactly when

1. the edge remains served some other way (other membership or a valid hub
   cover), and
2. no *other* edge's hub cover depends on it — a push ``x -> w`` is a
   dependency of every cover ``(x, y) -> w``, and a pull ``w -> y`` of every
   cover ``(x, y) -> w``.

This cleanup is not part of the paper's algorithms (their cost accounting
avoids most redundancy by construction); it is exposed as an explicit
post-pass and exercised by the ablation benchmarks to quantify how much is
left on the table.  Pruning never increases cost and never breaks
feasibility (asserted by property tests).
"""

from __future__ import annotations

from collections import defaultdict

from repro.core.schedule import RequestSchedule
from repro.graph.digraph import Edge, Node, SocialGraph
from repro.workload.rates import Workload


def _dependencies(
    schedule: RequestSchedule,
) -> tuple[dict[Edge, int], dict[Edge, int]]:
    """Count hub covers depending on each push and pull leg."""
    push_deps: dict[Edge, int] = defaultdict(int)
    pull_deps: dict[Edge, int] = defaultdict(int)
    for (x, y), hub in schedule.hub_cover.items():
        push_deps[(x, hub)] += 1
        pull_deps[(hub, y)] += 1
    return push_deps, pull_deps


def prune_schedule(
    graph: SocialGraph,
    schedule: RequestSchedule,
    workload: Workload,
) -> RequestSchedule:
    """Return a copy of ``schedule`` with removable memberships dropped.

    Candidates are processed most-expensive-first so that when an edge sits
    in both sets, the costlier membership goes (when neither is needed as a
    hub leg).  Stale hub covers whose edge is directly served and whose legs
    serve no one else are also dropped, potentially unlocking more pruning,
    so the loop runs to a fixed point.
    """
    pruned = schedule.copy()
    changed = True
    while changed:
        changed = False
        push_deps, pull_deps = _dependencies(pruned)

        # Drop hub covers that are redundant (edge directly served anyway).
        for edge in list(pruned.hub_cover):
            if edge in pruned.push or edge in pruned.pull:
                pruned.uncover(edge)
                changed = True

        push_deps, pull_deps = _dependencies(pruned)
        candidates: list[tuple[float, str, Edge]] = []
        for edge in pruned.push:
            if push_deps.get(edge, 0) == 0:
                candidates.append((workload.rp(edge[0]), "push", edge))
        for edge in pruned.pull:
            if pull_deps.get(edge, 0) == 0:
                candidates.append((workload.rc(edge[1]), "pull", edge))
        candidates.sort(key=lambda item: (-item[0], item[1], repr(item[2])))

        for _cost, kind, edge in candidates:
            if kind == "push":
                pruned.remove_push(edge)
                if pruned.serves(edge):
                    changed = True
                else:
                    pruned.add_push(edge)
            else:
                pruned.remove_pull(edge)
                if pruned.serves(edge):
                    changed = True
                else:
                    pruned.add_pull(edge)
        # Re-check dependencies next round: removals may orphan hub covers
        # only via uncover above, which never invalidates serving edges.
    return pruned


def swap_to_cheaper_direct(
    graph: SocialGraph,
    schedule: RequestSchedule,
    workload: Workload,
) -> RequestSchedule:
    """Replace direct memberships by the cheaper direction where free.

    A direct push ``u -> v`` that no cover depends on, with
    ``rc(v) < rp(u)``, can be swapped to a pull (and vice versa).  Another
    zero-risk cleanup quantified by the ablation benches.
    """
    improved = schedule.copy()
    push_deps, pull_deps = _dependencies(improved)
    for edge in list(improved.push):
        u, v = edge
        if push_deps.get(edge, 0) == 0 and edge not in improved.pull:
            if workload.rc(v) < workload.rp(u) and not (
                improved.piggyback_valid(edge)
            ):
                improved.remove_push(edge)
                improved.add_pull(edge)
    for edge in list(improved.pull):
        u, v = edge
        if pull_deps.get(edge, 0) == 0 and edge not in improved.push:
            if workload.rp(u) < workload.rc(v) and not (
                improved.piggyback_valid(edge)
            ):
                improved.remove_pull(edge)
                improved.add_push(edge)
    return improved


def cleanup_schedule(
    graph: SocialGraph,
    schedule: RequestSchedule,
    workload: Workload,
) -> RequestSchedule:
    """Full cleanup: prune redundancy, then swap strays to the cheap side."""
    return swap_to_cheaper_direct(
        graph, prune_schedule(graph, schedule, workload), workload
    )


def count_redundant_memberships(schedule: RequestSchedule) -> dict[str, int]:
    """Quick diagnostic: memberships with no dependent cover that overlap."""
    push_deps, pull_deps = _dependencies(schedule)
    both = schedule.push & schedule.pull
    return {
        "push_and_pull": len(both),
        "push_without_dependents": sum(
            1 for e in schedule.push if push_deps.get(e, 0) == 0
        ),
        "pull_without_dependents": sum(
            1 for e in schedule.pull if pull_deps.get(e, 0) == 0
        ),
        "covers": len(schedule.hub_cover),
    }


def hub_usage_histogram(schedule: RequestSchedule) -> dict[Node, int]:
    """Covered-edge count per hub (who are the work-horse relays?)."""
    usage: dict[Node, int] = defaultdict(int)
    for _edge, hub in schedule.hub_cover.items():
        usage[hub] += 1
    return dict(usage)
