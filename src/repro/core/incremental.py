"""Incremental schedule maintenance under graph updates (paper section 3.3).

CHITCHAT and PARALLELNOSY optimize a *static* graph.  Real social graphs
gain and lose edges continuously; re-running the optimizer on every change
would be absurd.  The paper's incremental policy is deliberately simple:

* **edge added** — serve it directly, picking the cheaper of push and pull
  (the hybrid rule); no attempt to piggyback it.
* **pull edge ``w -> y`` removed** where ``w`` is a hub — every cross-edge
  into ``y`` covered through ``w`` loses its relay and is downgraded to
  direct service.
* **push edge ``x -> w`` removed** — symmetric: every cross-edge out of
  ``x`` covered through ``w`` is downgraded.

Quality degrades slowly (Figure 5): the experiment shows one re-optimization
per ~10⁷ added edges suffices on Flickr.  :class:`IncrementalMaintainer`
implements the rules and keeps reverse indexes so removals repair in time
proportional to the broken covers, not the schedule size.
"""

from __future__ import annotations

from collections import defaultdict

from repro.core.cost import schedule_cost
from repro.core.schedule import RequestSchedule
from repro.errors import ScheduleError, WorkloadError
from repro.graph.digraph import Edge, Node, SocialGraph
from repro.workload.rates import Workload


class IncrementalMaintainer:
    """Keeps a feasible schedule in sync with a mutating social graph.

    The maintainer owns the graph and schedule it is given: mutate the graph
    only through :meth:`add_edge` / :meth:`remove_edge` so the schedule and
    the reverse indexes stay consistent.

    Parameters
    ----------
    graph:
        The social graph, already scheduled.
    workload:
        Rates used to price direct service of new/broken edges.  New users
        unknown to the workload default to rate floors of the workload's
        minimum positive rates.
    schedule:
        A feasible schedule for ``graph`` (validated on construction).
    """

    def __init__(
        self,
        graph: SocialGraph,
        workload: Workload,
        schedule: RequestSchedule,
    ) -> None:
        self.graph = graph
        self.workload = workload
        self.schedule = schedule
        self.edges_added = 0
        self.edges_removed = 0
        self.covers_broken = 0
        # hub -> cross-edges relayed through it (reverse index of hub_cover)
        self._by_hub: dict[Node, set[Edge]] = defaultdict(set)
        for edge, hub in schedule.hub_cover.items():
            self._by_hub[hub].add(edge)
        # floor rates for users outside the original workload, computed
        # once here instead of rescanning every rate per fallback call
        # (``cost()`` hits the fallback for every post-construction user)
        self._rp_floor = min(
            (r for r in workload.production.values() if r > 0), default=1.0
        )
        self._rc_floor = min(
            (r for r in workload.consumption.values() if r > 0), default=1.0
        )
        # running schedule cost, maintained across events so ``cost()``
        # is O(1) instead of an O(|schedule|) rescan per call
        self._cost = sum(self._rp(u) for u, _v in schedule.push) + sum(
            self._rc(v) for _u, v in schedule.pull
        )

    # ------------------------------------------------------------------
    # Rate access tolerant to users outside the original workload
    # ------------------------------------------------------------------
    def _rp(self, user: Node) -> float:
        try:
            return self.workload.rp(user)
        except WorkloadError:  # user joined after construction
            return self._rp_floor

    def _rc(self, user: Node) -> float:
        try:
            return self.workload.rc(user)
        except WorkloadError:  # user joined after construction
            return self._rc_floor

    def _serve_directly(self, edge: Edge) -> None:
        u, v = edge
        if self._rp(u) <= self._rc(v):
            if edge not in self.schedule.push:
                self.schedule.add_push(edge)
                self._cost += self._rp(u)
        else:
            if edge not in self.schedule.pull:
                self.schedule.add_pull(edge)
                self._cost += self._rc(v)

    # ------------------------------------------------------------------
    # Update rules
    # ------------------------------------------------------------------
    def add_edge(self, producer: Node, consumer: Node) -> bool:
        """Insert a social edge and serve it directly (hybrid rule).

        Returns False (and changes nothing) when the edge already exists.
        """
        if not self.graph.add_edge(producer, consumer):
            return False
        self._serve_directly((producer, consumer))
        self.edges_added += 1
        return True

    def remove_edge(self, producer: Node, consumer: Node) -> None:
        """Remove a social edge, repairing any covers that relied on it."""
        edge = (producer, consumer)
        if not self.graph.has_edge(producer, consumer):
            raise ScheduleError(f"cannot remove non-existent edge {edge!r}")
        self.graph.remove_edge(producer, consumer)
        self.edges_removed += 1

        # The edge itself no longer needs service.
        if edge in self.schedule.push:
            self.schedule.remove_push(edge)
            self._cost -= self._rp(producer)
        if edge in self.schedule.pull:
            self.schedule.remove_pull(edge)
            self._cost -= self._rc(consumer)
        hub = self.schedule.hub_cover.pop(edge, None)
        if hub is not None:
            self._by_hub[hub].discard(edge)

        # Covers relayed over this edge break.  The edge can be the push leg
        # (x -> w: every covered x -> y with hub w) or the pull leg
        # (w -> y: every covered x -> y with hub w into this consumer).
        broken: list[Edge] = []
        for covered in self._by_hub.get(consumer, ()):  # consumer acts as hub w
            if covered[0] == producer:  # push leg x -> w removed
                broken.append(covered)
        for covered in self._by_hub.get(producer, ()):  # producer acts as hub w
            if covered[1] == consumer:  # pull leg w -> y removed
                broken.append(covered)
        for covered in broken:
            victim_hub = self.schedule.hub_cover.get(covered)
            if victim_hub is None:
                continue
            self.schedule.hub_cover.pop(covered, None)
            self._by_hub[victim_hub].discard(covered)
            self.covers_broken += 1
            if self.graph.has_edge(*covered):
                self._serve_directly(covered)

    def add_edges(self, edges) -> int:
        """Bulk :meth:`add_edge`; returns how many were new."""
        return sum(1 for u, v in edges if self.add_edge(u, v))

    def remove_edges(self, edges) -> int:
        """Bulk :meth:`remove_edge`; returns how many covers it repaired.

        Mirrors :meth:`add_edges`' duplicate tolerance: edges already gone
        (including duplicates within ``edges``) are skipped instead of
        raising, so a batch diffed against a stale snapshot applies
        cleanly.  The return value counts the covers downgraded to direct
        service — the repair work the batch caused.
        """
        before = self.covers_broken
        for u, v in edges:
            if self.graph.has_edge(u, v):
                self.remove_edge(u, v)
        return self.covers_broken - before

    # ------------------------------------------------------------------
    def cost(self) -> float:
        """Current schedule cost under the maintainer's workload, O(1).

        Maintained incrementally across events (equals
        :meth:`recompute_cost` up to float summation order).  Users added
        after construction are priced with the floor rates, so costs
        remain comparable across a batch of insertions.
        """
        return self._cost

    def recompute_cost(self) -> float:
        """Full O(|schedule|) rescan of :meth:`cost`, for verification."""
        total = 0.0
        for u, _v in self.schedule.push:
            total += self._rp(u)
        for _u, v in self.schedule.pull:
            total += self._rc(v)
        return total

    def is_feasible(self) -> bool:
        """Whether the maintained schedule still serves every edge."""
        return self.schedule.is_feasible(self.graph)


def reoptimized_cost(
    graph: SocialGraph,
    workload: Workload,
    optimizer_factory,
) -> float:
    """Cost after re-running an optimizer from scratch (Figure 5's 'static').

    ``optimizer_factory(graph, workload) -> RequestSchedule`` is typically
    :func:`repro.core.parallelnosy.parallel_nosy_schedule`.
    """
    schedule = optimizer_factory(graph, workload)
    return schedule_cost(schedule, workload)
