"""Exact solver for tiny DISSEMINATION instances.

The DISSEMINATION problem is NP-hard (paper Theorem 2, by reduction from
SET-COVER), so no polynomial exact algorithm is expected — but on instances
with a handful of edges, exhaustive search is feasible and gives the ground
truth against which the CHITCHAT approximation and the PARALLELNOSY
heuristic are measured in tests.

The search exploits the structure of Theorem 1: a schedule is determined by
the pair ``(H, L)``, an edge is served iff it is pushed, pulled, or closes a
wedge ``u -> w -> v`` with ``u -> w ∈ H`` and ``w -> v ∈ L``.  Given ``H``,
the optimal ``L`` decomposes per consumer: for each node ``v``, the pulls
into ``v`` must cover every in-edge of ``v`` not already served, and each
pull costs the same ``rc(v)`` — a tiny per-consumer set-cover solved by
brute force over subsets of in-edges.  The outer loop enumerates ``H``
subsets, so the overall complexity is ``O(2^|E| · Σ_v 2^{indeg(v)})`` —
fine for the ≤ 14-edge instances used in tests.
"""

from __future__ import annotations

from itertools import combinations

from repro.core.cost import schedule_cost
from repro.core.schedule import RequestSchedule
from repro.errors import ScheduleError
from repro.graph.digraph import Edge, Node, SocialGraph
from repro.workload.rates import Workload

#: Refuse instances bigger than this (the enumeration is exponential).
MAX_EDGES = 16


def optimal_schedule(
    graph: SocialGraph, workload: Workload
) -> tuple[RequestSchedule, float]:
    """Exhaustively find a minimum-cost feasible schedule.

    Returns the schedule and its cost.  Raises :class:`ScheduleError` when
    the instance exceeds :data:`MAX_EDGES` edges.
    """
    edges = sorted(graph.edges(), key=repr)
    if len(edges) > MAX_EDGES:
        raise ScheduleError(
            f"exact solver limited to {MAX_EDGES} edges, got {len(edges)}"
        )
    if not edges:
        return RequestSchedule(), 0.0

    consumers: dict[Node, list[Edge]] = {}
    for edge in edges:
        consumers.setdefault(edge[1], []).append(edge)

    best_cost = float("inf")
    best: RequestSchedule | None = None

    for h_size in range(len(edges) + 1):
        for h_subset in combinations(edges, h_size):
            push = set(h_subset)
            push_cost = sum(workload.rp(u) for u, _ in push)
            if push_cost >= best_cost:
                continue
            pull, pull_cost, ok = _optimal_pulls(graph, workload, push, consumers)
            if not ok:
                continue
            total = push_cost + pull_cost
            if total < best_cost:
                best_cost = total
                best = _assemble(graph, push, pull)

    assert best is not None  # the all-push schedule is always feasible
    return best, best_cost


def _optimal_pulls(
    graph: SocialGraph,
    workload: Workload,
    push: set[Edge],
    consumers: dict[Node, list[Edge]],
) -> tuple[set[Edge], float, bool]:
    """Cheapest pull set completing ``push``, solved per consumer."""
    pull: set[Edge] = set()
    total = 0.0
    for v, in_edges in consumers.items():
        need = [e for e in in_edges if e not in push]
        if not need:
            continue
        # A pull on (w, v) covers edge (w, v) and every (u, v) with a pushed
        # wedge u -> w.  Choose the fewest pulls covering all needed edges.
        coverage: dict[Edge, set[Edge]] = {}
        for w_edge in in_edges:  # candidate pull legs (w, v)
            w = w_edge[0]
            covered = {w_edge}
            for u_edge in need:
                u = u_edge[0]
                if u != w and graph.has_edge(u, w) and (u, w) in push:
                    covered.add(u_edge)
            coverage[w_edge] = covered
        chosen = _min_cover(need, in_edges, coverage)
        if chosen is None:
            return set(), 0.0, False
        pull.update(chosen)
        total += len(chosen) * workload.rc(v)
    return pull, total, True


def _min_cover(
    need: list[Edge],
    candidates: list[Edge],
    coverage: dict[Edge, set[Edge]],
) -> tuple[Edge, ...] | None:
    """Smallest subset of ``candidates`` whose coverage includes ``need``."""
    need_set = set(need)
    for size in range(len(candidates) + 1):
        for combo in combinations(candidates, size):
            covered: set[Edge] = set()
            for item in combo:
                covered |= coverage[item]
            if need_set <= covered:
                return combo
    return None


def _assemble(
    graph: SocialGraph, push: set[Edge], pull: set[Edge]
) -> RequestSchedule:
    """Build a RequestSchedule, recording hub covers for indirect edges."""
    schedule = RequestSchedule(push=set(push), pull=set(pull))
    for edge in graph.edges():
        if edge in push or edge in pull:
            continue
        u, v = edge
        for w in graph.successors_view(u):
            if (u, w) in push and (w, v) in pull:
                schedule.cover_via_hub(edge, w)
                break
    return schedule


def optimality_gap(
    graph: SocialGraph,
    workload: Workload,
    schedule: RequestSchedule,
) -> float:
    """Ratio ``cost(schedule) / cost(optimal)`` (≥ 1) on a tiny instance."""
    _, opt_cost = optimal_schedule(graph, workload)
    cost = schedule_cost(schedule, workload)
    if opt_cost == 0:
        return 1.0 if cost == 0 else float("inf")
    return cost / opt_cost
