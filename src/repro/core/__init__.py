"""Core contribution: schedules, cost model, CHITCHAT, PARALLELNOSY.

Every algorithm here reads the social graph through the
:class:`~repro.graph.view.GraphView` protocol, so both adjacency backends
work interchangeably: the mutable dict-of-sets
:class:`~repro.graph.digraph.SocialGraph` and the frozen numpy
:class:`~repro.graph.csr.CSRGraph` snapshot.  Scheduler entry points take a
``backend=`` parameter: ``"auto"`` (default) freezes dense-id graphs with
at least :data:`~repro.graph.view.CSR_FASTPATH_THRESHOLD` nodes to CSR
before running — on that path hub-graph construction, singleton pricing,
hybrid decisions, and the densest-subgraph oracle's element filtering all
run as vectorized kernels over flat edge arrays, while ``"dict"``/``"csr"``
force a backend.  Both backends are property-tested to produce identical
schedules and costs (``tests/test_graphview.py``), so the fast path is a
pure performance choice.

The CHITCHAT schedulers additionally take an ``oracle=`` parameter
selecting the densest-subgraph oracle: ``"peel"`` (the paper's factor-2
peeling, default), ``"exact"`` (the parametric max-flow subsystem of
:mod:`repro.flow`, true optima), or ``"auto"`` (exact on small
hub-graphs, peel on dense ones).  Shared float-comparison tolerances
live in :mod:`repro.core.tolerances`.
"""

from repro.core.active import (
    ActiveSchedule,
    active_cost,
    reachable_views,
    to_passive,
)
from repro.core.batched import (
    BatchedChitchat,
    BatchedStats,
    batched_chitchat_schedule,
    batched_chitchat_with_stats,
)
from repro.core.async_model import (
    accumulated_cost,
    effective_workload,
    frontier,
    knee_period,
    staleness_bound,
)
from repro.core.baselines import (
    BASELINES,
    hybrid_schedule,
    pull_all_schedule,
    push_all_schedule,
)
from repro.core.chitchat import (
    ChitchatScheduler,
    ChitchatStats,
    chitchat_schedule,
    chitchat_with_stats,
)
from repro.core.cost import (
    cost_breakdown,
    hybrid_edge_cost,
    improvement_ratio,
    predicted_throughput,
    pull_edge_cost,
    push_edge_cost,
    schedule_cost,
)
from repro.core.coverage import CoverageReport, check_coverage, validate_schedule
from repro.core.densest import (
    DensestResult,
    OracleCutoff,
    densest_subgraph,
    unweighted_densest_subgraph,
)
from repro.core.exact import optimal_schedule, optimality_gap
from repro.core.hubgraph import HubGraph, build_hub_graph, single_consumer_hub_graph
from repro.core.incremental import IncrementalMaintainer, reoptimized_cost
from repro.core.parallelnosy import (
    Candidate,
    IterationResult,
    ParallelNosyOptimizer,
    improvement_history,
    parallel_nosy_schedule,
    parallel_nosy_with_history,
)
from repro.core.serialize import (
    load_schedule,
    load_workload,
    save_schedule,
    save_workload,
)
from repro.core.pruning import (
    cleanup_schedule,
    count_redundant_memberships,
    hub_usage_histogram,
    prune_schedule,
    swap_to_cheaper_direct,
)
from repro.core.schedule import RequestSchedule

__all__ = [
    "ActiveSchedule",
    "BASELINES",
    "BatchedChitchat",
    "BatchedStats",
    "accumulated_cost",
    "batched_chitchat_schedule",
    "batched_chitchat_with_stats",
    "effective_workload",
    "frontier",
    "knee_period",
    "staleness_bound",
    "load_schedule",
    "load_workload",
    "save_schedule",
    "save_workload",
    "Candidate",
    "ChitchatScheduler",
    "ChitchatStats",
    "CoverageReport",
    "DensestResult",
    "OracleCutoff",
    "HubGraph",
    "IncrementalMaintainer",
    "IterationResult",
    "ParallelNosyOptimizer",
    "RequestSchedule",
    "active_cost",
    "build_hub_graph",
    "check_coverage",
    "chitchat_schedule",
    "chitchat_with_stats",
    "cleanup_schedule",
    "count_redundant_memberships",
    "hub_usage_histogram",
    "prune_schedule",
    "swap_to_cheaper_direct",
    "cost_breakdown",
    "densest_subgraph",
    "hybrid_edge_cost",
    "hybrid_schedule",
    "improvement_history",
    "improvement_ratio",
    "optimal_schedule",
    "optimality_gap",
    "parallel_nosy_schedule",
    "parallel_nosy_with_history",
    "predicted_throughput",
    "pull_all_schedule",
    "pull_edge_cost",
    "push_all_schedule",
    "push_edge_cost",
    "reachable_views",
    "reoptimized_cost",
    "schedule_cost",
    "single_consumer_hub_graph",
    "to_passive",
    "unweighted_densest_subgraph",
    "validate_schedule",
]
