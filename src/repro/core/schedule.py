"""Request schedules: the central object of the DISSEMINATION problem.

A request schedule (paper Definition 3) is a pair of edge sets: the push set
``H`` and the pull set ``L``.  By Theorem 1, a schedule guarantees bounded
staleness exactly when every social edge ``u -> v`` is

* a **push** (``u -> v ∈ H``): events by ``u`` are written into ``v``'s view
  at share time;
* a **pull** (``u -> v ∈ L``): ``v``'s feed queries read ``u``'s view; or
* **covered by piggybacking** through a hub ``w`` with ``u -> w ∈ H`` and
  ``w -> v ∈ L`` (Definition 4), at zero additional request cost.

:class:`RequestSchedule` tracks all three sets explicitly.  The hub cover is
stored as a map ``edge -> hub`` rather than a bare set because the
incremental-update rules of section 3.3 need to know *which* hub serves a
covered edge when a push or pull edge disappears.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator
from dataclasses import dataclass, field

from repro.errors import ScheduleError
from repro.graph.digraph import Edge, Node
from repro.graph.view import GraphView


@dataclass
class RequestSchedule:
    """Mutable push/pull/hub-cover assignment over a social graph's edges.

    Attributes
    ----------
    push:
        The set ``H`` of edges served by pushing at share time.
    pull:
        The set ``L`` of edges served by pulling at query time.
    hub_cover:
        Map from covered edge ``u -> v`` to the hub node ``w`` relaying it.
    """

    push: set[Edge] = field(default_factory=set)
    pull: set[Edge] = field(default_factory=set)
    hub_cover: dict[Edge, Node] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    def copy(self) -> "RequestSchedule":
        """Independent deep copy."""
        return RequestSchedule(
            push=set(self.push),
            pull=set(self.pull),
            hub_cover=dict(self.hub_cover),
        )

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add_push(self, edge: Edge) -> None:
        """Serve ``edge`` by push (idempotent)."""
        self.push.add(edge)

    def add_pull(self, edge: Edge) -> None:
        """Serve ``edge`` by pull (idempotent)."""
        self.pull.add(edge)

    def cover_via_hub(self, edge: Edge, hub: Node) -> None:
        """Record that ``edge`` is covered by piggybacking through ``hub``.

        The caller is responsible for having placed ``u -> hub`` in the push
        set and ``hub -> v`` in the pull set; :meth:`piggyback_valid` and the
        validators in :mod:`repro.core.coverage` check the invariant.
        """
        u, v = edge
        if hub == u or hub == v:
            raise ScheduleError(f"hub {hub!r} cannot be an endpoint of {edge!r}")
        self.hub_cover[edge] = hub

    def uncover(self, edge: Edge) -> None:
        """Drop the hub cover of ``edge`` (no-op if not hub-covered)."""
        self.hub_cover.pop(edge, None)

    def remove_push(self, edge: Edge) -> None:
        """Remove ``edge`` from the push set (no-op if absent)."""
        self.push.discard(edge)

    def remove_pull(self, edge: Edge) -> None:
        """Remove ``edge`` from the pull set (no-op if absent)."""
        self.pull.discard(edge)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def piggyback_valid(self, edge: Edge) -> bool:
        """Whether ``edge``'s recorded hub has its push and pull legs in place."""
        hub = self.hub_cover.get(edge)
        if hub is None:
            return False
        u, v = edge
        return (u, hub) in self.push and (hub, v) in self.pull

    def serves(self, edge: Edge) -> bool:
        """Whether ``edge`` is served (push, pull, or valid hub cover)."""
        return edge in self.push or edge in self.pull or self.piggyback_valid(edge)

    def mechanism(self, edge: Edge) -> str:
        """How ``edge`` is served: ``push``/``pull``/``hub``/``unserved``.

        Push wins ties for reporting purposes (an edge can be in both sets).
        """
        if edge in self.push:
            return "push"
        if edge in self.pull:
            return "pull"
        if self.piggyback_valid(edge):
            return "hub"
        return "unserved"

    def uncovered_edges(self, graph: "GraphView") -> Iterator[Edge]:
        """Edges of ``graph`` not served by this schedule."""
        for edge in graph.edges():
            if not self.serves(edge):
                yield edge

    def is_feasible(self, graph: "GraphView") -> bool:
        """Whether every edge of ``graph`` is served (Theorem 1 condition)."""
        return next(self.uncovered_edges(graph), None) is None

    # ------------------------------------------------------------------
    # Per-user views of the schedule (what the prototype consumes)
    # ------------------------------------------------------------------
    def push_set_of(self, user: Node) -> set[Node]:
        """Views updated when ``user`` shares: ``{v : user -> v ∈ H}``.

        This is the ``h[u]`` of Algorithm 3 in the paper (the user's own view
        is implicit and always updated).
        """
        return {v for (u, v) in self.push if u == user}

    def pull_set_of(self, user: Node) -> set[Node]:
        """Views queried when ``user`` reads its feed: ``{u : u -> user ∈ L}``.

        This is the ``l[u]`` of Algorithm 3 (own view implicit).
        """
        return {u for (u, v) in self.pull if v == user}

    def build_user_maps(
        self, users: Iterable[Node]
    ) -> tuple[dict[Node, set[Node]], dict[Node, set[Node]]]:
        """Materialize ``h[u]`` and ``l[u]`` for every user in one pass.

        Much faster than calling :meth:`push_set_of` per user on large
        schedules; this is what the prototype's application servers load into
        memory at startup.
        """
        push_map: dict[Node, set[Node]] = {u: set() for u in users}
        pull_map: dict[Node, set[Node]] = {u: set() for u in push_map}
        for u, v in self.push:
            push_map.setdefault(u, set()).add(v)
        for u, v in self.pull:
            pull_map.setdefault(v, set()).add(u)
        return push_map, pull_map

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def stats(self) -> dict[str, int]:
        """Edge counts per mechanism (for reports)."""
        return {
            "push_edges": len(self.push),
            "pull_edges": len(self.pull),
            "hub_covered_edges": len(self.hub_cover),
            "push_and_pull_edges": len(self.push & self.pull),
        }

    def hubs(self) -> set[Node]:
        """Distinct hub nodes used by the cover."""
        return set(self.hub_cover.values())

    def __repr__(self) -> str:
        return (
            f"RequestSchedule(push={len(self.push)}, pull={len(self.pull)}, "
            f"hub_covered={len(self.hub_cover)})"
        )
