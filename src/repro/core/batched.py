"""BATCHEDCHITCHAT — a scalable variant of CHITCHAT (paper future work).

Section 4.4 of the paper closes with: the gap between CHITCHAT and
PARALLELNOSY "suggest[s] interesting future work on the design of
techniques to scale the CHITCHAT algorithm to very large datasets".  This
module implements the natural such technique, combining the two published
algorithms:

* like CHITCHAT, candidates come from the weighted densest-subgraph oracle
  over *full* hub-graphs (not just single-consumer ones), keeping the
  richer candidate space responsible for CHITCHAT's quality;
* like PARALLELNOSY, many candidates are applied per round instead of one:
  each round computes every hub's champion independently (embarrassingly
  parallel, like phase 1), sorts them by cost-per-newly-covered-element,
  and greedily accepts champions that do not *conflict* with an already
  accepted one (no shared uncovered element and no shared leg whose weight
  the earlier acceptance changed) — the sequential-scan analogue of edge
  locking.

The oracle work per round is one pass over the hubs, versus CHITCHAT's
re-oracling of every touched hub after every single selection; rounds
shrink geometrically, so the number of oracle calls drops from
``O(selections × avg-touched-hubs)`` to ``O(rounds × hubs)``.  The greedy
guarantee degrades (accepted champions other than the round's first may be
stale), which is exactly the quality/scalability trade the ablation bench
quantifies.

The per-round refresh shares CHITCHAT's lazy-oracle machinery (``lazy=True``,
the default): dirty hubs are probed in ascending order of their cached
bounds with the round's acceptance threshold as the oracle ``upper_bound``,
so hubs that provably cannot be accepted this round abandon after an O(m)
probe (:class:`~repro.core.densest.OracleCutoff`) and their certified
bounds are cached until a later round's threshold (or a dirtying event)
makes them competitive again.  Lazy and eager rounds accept identical
champion sets (property-tested).
"""

from __future__ import annotations

import math

from repro.core.baselines import hybrid_schedule
from repro.core.cost import hybrid_edge_cost, schedule_cost
from repro.core.densest import (
    DensestResult,
    OracleCutoff,
    ScheduleMirror,
    densest_subgraph,
)
from repro.core.hubgraph import HubGraph, build_hub_graph
from repro.core.schedule import RequestSchedule
from repro.core.tolerances import BATCH_K, COST_EPS, EPS_ACCEPT_SLACK
from repro.errors import ReproError
from repro.flow.exact_oracle import (
    ExactOracle,
    MultiHubSession,
    use_exact,
    validate_oracle_mode,
)
from repro.graph.csr import CSRGraph
from repro.graph.digraph import Edge, Node
from repro.graph.view import (
    GraphView,
    NeighborSetCache,
    affected_hubs,
    as_graph_view,
    edge_list,
    node_ranks,
)
from repro.obs import trace
from repro.obs.metrics import MetricsRegistry, StatsView
from repro.workload.rates import Workload


class BatchedStats(StatsView):
    """Run diagnostics: rounds, oracle calls, acceptance behavior.

    ``oracle_calls`` counts full densest-subgraph evaluations (peels and
    exact max-flow solves; ``exact_oracle_calls`` is the flow subset);
    ``oracle_early_exits`` counts bounded probes abandoned via the
    oracle's pre-evaluation lower bound; ``oracle_calls_saved`` is how
    many full evaluations the eager per-round refresh would have run that
    the lazy bounds avoided (0 in eager mode); ``champions_retained``
    counts hubs kept clean across a round because no acceptance touched
    their exact champion's covered set; ``epsilon_deferred`` counts dirty
    re-evaluations the ``(1 + ε)`` relaxation deferred to a later round
    because the hub's certified bound proved it at best marginal under
    the round's acceptance bar (0 whenever ``epsilon=0``; unlike
    ``ChitchatStats.epsilon_accepts``, which counts accepted clean
    candidates, this counter measures skipped work — the names differ
    because the events differ).

    ``warm_solves`` / ``preflow_repairs`` / ``flow_passes`` mirror the
    :class:`~repro.flow.exact_oracle.ExactOracle` warm-session counters
    exactly as on :class:`~repro.core.chitchat.ChitchatStats` (0 under
    ``oracle="peel"``), and ``kernel_invocations`` / ``batched_solves``
    / ``batched_blocks`` mirror the oracle's
    :class:`~repro.flow.batched_solve.FlowStats` profile of the batched
    block-diagonal flow tier (``batch_k=``).

    Since ISSUE 8 this is a :class:`~repro.obs.metrics.StatsView`: the
    round counters live at the view's node, the warm-session counters
    under its ``oracle`` child, and the flow counters under
    ``oracle/flow`` (shared with the session's ``FlowStats`` cells when
    the run's registry is wired through).  Field names, defaults, and
    arithmetic are unchanged.
    """

    _FIELDS = {
        "rounds": (("rounds",), "counter"),
        "oracle_calls": (("oracle_calls",), "counter"),
        "exact_oracle_calls": (("exact_oracle_calls",), "counter"),
        "oracle_early_exits": (("oracle_early_exits",), "counter"),
        "oracle_calls_saved": (("oracle_calls_saved",), "counter"),
        "champions_retained": (("champions_retained",), "counter"),
        "epsilon_deferred": (("epsilon_deferred",), "counter"),
        "warm_solves": (("oracle", "warm_solves"), "counter"),
        "preflow_repairs": (("oracle", "preflow_repairs"), "counter"),
        "flow_passes": (("oracle", "flow_passes"), "counter"),
        "kernel_invocations": (
            ("oracle", "flow", "kernel_invocations"),
            "counter",
        ),
        "batched_solves": (
            ("oracle", "flow", "arena", "batched_solves"),
            "counter",
        ),
        "batched_blocks": (
            ("oracle", "flow", "arena", "batched_blocks"),
            "counter",
        ),
        "champions_accepted": (("champions_accepted",), "counter"),
        "champions_rejected": (("champions_rejected",), "counter"),
        "singleton_fallbacks": (("singleton_fallbacks",), "counter"),
    }
    _LIST_FIELDS = ("round_coverage",)


class BatchedChitchat:
    """Round-based bulk-greedy CHITCHAT.

    Parameters
    ----------
    graph, workload:
        The DISSEMINATION instance; ``graph`` may be either adjacency
        backend (``backend="auto"`` freezes large dense-id graphs to CSR).
    max_cross_edges:
        Per-hub cross-edge bound forwarded to hub-graph construction.
    acceptance_slack:
        A champion is accepted only if its cost-per-element is within this
        multiplicative factor of the round's best champion (1.0 accepts
        only ties with the best; larger values accept more per round and
        converge in fewer rounds at some quality risk).  Default 2.0.
    lazy:
        When True (default) dirty hubs are re-oracled with the round's
        acceptance threshold as an early-exit bound and certified bounds
        are cached across rounds; ``False`` restores the fully eager
        per-round refresh.  Both modes accept identical champions.
    oracle:
        Densest-subgraph oracle selection, as in
        :class:`~repro.core.chitchat.ChitchatScheduler`: ``"peel"``
        (default), ``"exact"`` (parametric max-flow, true optima), or
        ``"auto"`` (exact up to
        :data:`~repro.flow.exact_oracle.EXACT_AUTO_MAX_ELEMENTS`
        elements per hub-graph).  Exact champions additionally survive
        rounds whose acceptances miss their covered set without being
        re-oracled (lazy mode).
    epsilon:
        ``(1 + ε)`` relaxation of the lazy round refresh: a dirty hub
        whose certified optimum bound ``b`` satisfies
        ``b · (1 + ε) ≥ bar`` (the round's running acceptance bar) is
        deferred to a later round without an oracle call — even if its
        true champion squeaked under the bar, it was within ``(1 + ε)``
        of rejection.  Bounds stay valid across coverage events (the
        optimum is monotone under covering) and are dropped when a
        hub's legs are paid.  ``0.0`` (default) disables the relaxation
        and leaves the accepted champion sets untouched.
    warm:
        Cross-call warm starts of the exact oracle's per-hub flow
        problems, exactly as on
        :class:`~repro.core.chitchat.ChitchatScheduler`: ``True`` (the
        default) repairs each hub's previous preflow across rounds,
        ``False`` restores per-call cold solves.  Accepted champion sets
        are identical either way (property-tested); irrelevant under
        ``oracle="peel"``.
    batch_k:
        Width of the batched block-diagonal flow tier: each round's
        dirty exact-eligible hubs are solved in arena passes of up to
        this many blocks (one
        :class:`~repro.flow.batched_solve.BatchedNetwork` solve instead
        of per-hub kernel invocations).  Batched hubs are fully
        evaluated instead of bound-probed; a hub the probe would have
        cut off carries a true cost above the round's acceptance
        threshold, so the accepted champion sets are unchanged (only
        probe/eval counters differ).  ``None`` (default) uses
        :data:`~repro.core.tolerances.BATCH_K`; ``0`` or ``1`` disables
        batching; irrelevant under ``oracle="peel"``.
    method:
        Flow kernel of the exact oracle's networks and arenas, exactly
        as on :class:`~repro.core.chitchat.ChitchatScheduler`
        (``"auto"``/``"wave"``/``"loop"``/``"jit"``; a pure perf knob,
        irrelevant under ``oracle="peel"``).
    """

    def __init__(
        self,
        graph: GraphView,
        workload: Workload,
        max_cross_edges: int | None = None,
        acceptance_slack: float = 2.0,
        backend: str = "auto",
        lazy: bool = True,
        oracle: str = "peel",
        epsilon: float = 0.0,
        warm: bool = True,
        batch_k: int | None = None,
        method: str = "auto",
    ) -> None:
        if acceptance_slack < 1.0:
            raise ValueError("acceptance_slack must be >= 1.0")
        if epsilon < 0.0:
            raise ReproError(f"epsilon must be >= 0, got {epsilon!r}")
        if batch_k is not None and batch_k < 0:
            raise ReproError(f"batch_k must be >= 0, got {batch_k!r}")
        self.graph = as_graph_view(graph, backend)
        self.workload = workload
        self.max_cross_edges = max_cross_edges
        self.acceptance_slack = acceptance_slack
        self.schedule = RequestSchedule()
        #: Per-run metrics registry; ``stats`` and the oracle session's
        #: ``flow_stats`` are views over its ``scheduler`` subtree.
        self.metrics = MetricsRegistry()
        self.stats = BatchedStats(node=self.metrics.node("scheduler"))
        self._lazy = lazy
        self._epsilon = float(epsilon)
        self._oracle_mode = validate_oracle_mode(oracle)
        self._exact = (
            ExactOracle(
                warm=warm,
                method=method,
                metrics=self.metrics.node("scheduler", "oracle"),
            )
            if oracle != "peel"
            else None
        )
        self._batch_k = BATCH_K if batch_k is None else int(batch_k)
        self._multi = (
            MultiHubSession(self._exact)
            if self._exact is not None and self._batch_k >= 2
            else None
        )
        edges = edge_list(self.graph)
        self._uncovered: set[Edge] = set(edges)
        # dense edge-id mirrors of the scheduler state (CSR mode)
        self._mirror: ScheduleMirror | None = (
            ScheduleMirror(self.graph, workload, edges)
            if isinstance(self.graph, CSRGraph)
            else None
        )
        self._adjacency = NeighborSetCache(self.graph)
        self._rank = node_ranks(self.graph)
        self._hub_cache: dict[Node, HubGraph] = {}
        self._champion_cache: dict[Node, DensestResult | None] = {}
        # clean hubs whose last probe was an OracleCutoff: certified lower
        # bounds on their champion cost, valid until the hub is dirtied
        self._bound_cache: dict[Node, float] = {}
        # every hub's last certified lower bound on its *true optimum*
        # cost per element — valid across coverage events (the optimum is
        # monotone under covering), dropped when the hub's legs are paid;
        # backs the (1 + ε) skip of dirty re-evaluations
        self._opt_bound: dict[Node, float] = {}
        self._dirty: set[Node] = set(self.graph.nodes())
        # exact champions kept clean by the retention check since the
        # last round's refresh (merged into the eager accounting there)
        self._retained: set[Node] = set()
        # full peels the eager per-round refresh would have issued
        self._eager_equivalent = 0

    # ------------------------------------------------------------------
    def _champions(self) -> list[DensestResult]:
        """Champions of every eligible hub; only *dirty* hubs re-oracle.

        A hub is dirty when a previous acceptance covered one of its
        elements or paid for one of its legs; clean hubs keep their cached
        champion.  This is the same invalidation rule CHITCHAT applies
        after each single selection (Algorithm 1 line 14), amortized over
        a whole round.

        Lazy mode adds two cuts that provably change no acceptance: each
        oracle call is bounded by ``slack × best-champion-so-far`` (the
        running value only overestimates the round's final threshold, so a
        cutoff hub would have been rejected anyway), and clean hubs with a
        cached bound above the bar are skipped without any call.

        With ``epsilon > 0`` a third cut may change marginal acceptances:
        a *dirty* hub whose cached certified optimum bound ``b`` (valid
        across coverage events) satisfies ``b·(1+ε) ≥ bar`` is deferred
        to a later round without any call — its champion was at best
        within ``(1+ε)`` of the acceptance bar.  The hub stays dirty, so
        it is re-examined once the bar rises past its bound.
        """
        dirty_set = set(self._dirty)
        jobs: list[tuple[float, int, Node]] = []
        for hub in dirty_set:
            if self.graph.in_degree(hub) == 0 or self.graph.out_degree(hub) == 0:
                self._champion_cache[hub] = None
                self._bound_cache.pop(hub, None)
                self._opt_bound.pop(hub, None)
                continue
            jobs.append((0.0, self._rank[hub], hub))
        self._eager_equivalent += len(jobs)
        # hubs whose exact champion survived the previous round untouched:
        # eager would have re-oracled them, the retention check did not
        kept = self._retained - dirty_set
        self._eager_equivalent += len(kept)
        self.stats.champions_retained += len(kept)
        self._retained.clear()
        if self._lazy:
            jobs += [
                (bound, self._rank[hub], hub)
                for hub, bound in self._bound_cache.items()
                if hub not in dirty_set
            ]
        jobs.sort(key=lambda job: job[:2])
        self._dirty.clear()
        # incumbent: cheapest *clean* cached champion (true values only —
        # a dirty hub's stale cost may overestimate after a leg payment)
        best = min(
            (
                r.cost_per_element
                for hub, r in self._champion_cache.items()
                if r is not None and hub not in dirty_set
            ),
            default=math.inf,
        )
        # Batched flow tier: this round's dirty exact-eligible hubs are
        # solved in block-diagonal arena passes of up to ``batch_k``
        # blocks.  Each chunk carries the live acceptance bar as its
        # probe bound — hubs whose O(m) pre-peel relaxation proves them
        # above the bar are parked as certified bounds (exactly the
        # sequential loop's cutoff path) instead of paying a full
        # Dinkelbach solve.  A cut-off hub's true cost exceeds the bar,
        # which only tightens as ``best`` drops, so it would have been
        # rejected in the acceptance scan anyway — accepted champion
        # sets are unchanged, only which tier did the work differs.
        handled: set[Node] = set()
        if self._multi is not None:
            bar0: float | None = None
            if self._lazy and math.isfinite(best):
                bar0 = best * self.acceptance_slack + COST_EPS
            batch_jobs: list[tuple[Node, HubGraph]] = []
            for _bound, _job_rank, hub in jobs:
                if hub not in dirty_set:
                    continue  # clean bound hubs keep the cheap skip path
                if self._epsilon > 0.0 and bar0 is not None:
                    bound = self._opt_bound.get(hub)
                    if (
                        bound is not None
                        and bound * (1.0 + self._epsilon) + EPS_ACCEPT_SLACK
                        >= bar0
                    ):
                        # defers under the initial bar, hence under the
                        # (only smaller) live bar too — leave it to the
                        # sequential loop's deferral accounting
                        continue
                hub_graph = self._hub_cache.get(hub)
                if hub_graph is None:
                    hub_graph = build_hub_graph(
                        self.graph, hub, self.max_cross_edges
                    )
                    self._hub_cache[hub] = hub_graph
                if use_exact(self._oracle_mode, hub_graph):
                    batch_jobs.append((hub, hub_graph))
            if len(batch_jobs) >= 2:
                mirror = self._mirror
                for start in range(0, len(batch_jobs), self._batch_k):
                    chunk = batch_jobs[start : start + self._batch_k]
                    bar: float | None = None
                    if self._lazy and math.isfinite(best):
                        bar = best * self.acceptance_slack + COST_EPS
                    results = self._multi(
                        [hg for _hub, hg in chunk],
                        self.workload,
                        self.schedule,
                        self._uncovered,
                        uncovered_mask=mirror.uncovered_mask if mirror else None,
                        arrays=mirror.arrays if mirror else None,
                        upper_bounds=[bar] * len(chunk),
                    )
                    for (hub, _hg), result in zip(chunk, results):
                        handled.add(hub)
                        if isinstance(result, OracleCutoff):
                            self.stats.oracle_early_exits += 1
                            self._bound_cache[hub] = result.lower_bound
                            self._opt_bound[hub] = result.lower_bound
                            self._champion_cache.pop(hub, None)
                            continue
                        self.stats.oracle_calls += 1
                        self.stats.exact_oracle_calls += 1
                        self._bound_cache.pop(hub, None)
                        if result is not None and result.covered:
                            self._champion_cache[hub] = result
                            self._opt_bound[hub] = result.opt_lower_bound
                            if result.cost_per_element < best:
                                best = result.cost_per_element
                        else:
                            self._champion_cache[hub] = None
                            self._opt_bound.pop(hub, None)
        for cached_bound, _rank, hub in jobs:
            if hub in handled:
                continue
            bar: float | None = None
            if self._lazy and math.isfinite(best):
                bar = best * self.acceptance_slack + COST_EPS
            if hub not in dirty_set:
                # clean hub with a certified bound: skip it while the bar
                # sits below the bound; once past, peel directly — its
                # state is unchanged, so a re-probe would reproduce the
                # cached bound (deterministic) and can never cut off
                if bar is not None and cached_bound > bar:
                    continue
                bar = None
            elif self._epsilon > 0.0 and bar is not None:
                # (1 + ε) relaxation: a dirty hub whose certified optimum
                # bound proves it at best marginal under the bar is
                # deferred — stays dirty, re-examined when the bar rises
                bound = self._opt_bound.get(hub)
                if (
                    bound is not None
                    and bound * (1.0 + self._epsilon) + EPS_ACCEPT_SLACK
                    >= bar
                ):
                    self.stats.epsilon_deferred += 1
                    self._champion_cache.pop(hub, None)
                    self._dirty.add(hub)
                    continue
            hub_graph = self._hub_cache.get(hub)
            if hub_graph is None:
                hub_graph = build_hub_graph(self.graph, hub, self.max_cross_edges)
                self._hub_cache[hub] = hub_graph
            oracle = densest_subgraph
            exact = self._exact is not None and use_exact(
                self._oracle_mode, hub_graph
            )
            if exact:
                oracle = self._exact
            mirror = self._mirror
            result = oracle(
                hub_graph,
                self.workload,
                self.schedule,
                self._uncovered,
                uncovered_mask=mirror.uncovered_mask if mirror else None,
                arrays=mirror.arrays if mirror else None,
                upper_bound=bar,
            )
            if isinstance(result, OracleCutoff):
                self.stats.oracle_early_exits += 1
                self._bound_cache[hub] = result.lower_bound
                self._opt_bound[hub] = result.lower_bound
                self._champion_cache.pop(hub, None)
                continue
            self.stats.oracle_calls += 1
            if exact:
                self.stats.exact_oracle_calls += 1
            self._bound_cache.pop(hub, None)
            if result is not None and result.covered:
                self._champion_cache[hub] = result
                self._opt_bound[hub] = result.opt_lower_bound
                if result.cost_per_element < best:
                    best = result.cost_per_element
            else:
                self._champion_cache[hub] = None
                self._opt_bound.pop(hub, None)
        self.stats.oracle_calls_saved = (
            self._eager_equivalent - self.stats.oracle_calls
        )
        champions = [r for r in self._champion_cache.values() if r is not None]
        champions.sort(key=lambda r: (r.cost_per_element, self._rank[r.hub]))
        return champions

    def _mark_affected(self, covered_edges) -> None:
        """Dirty every hub whose hub-graph contains a covered element.

        Exception (lazy + exact oracle): a hub whose cached champion is a
        true optimum *and* shares no element with ``covered_edges`` keeps
        it clean — the optimum is monotone under coverage and the maximal
        optimal subgraph never contained the covered elements, so a
        re-evaluation would reproduce the cached champion exactly.  Leg
        payments need no carve-out: an acceptance pays only its own hub's
        legs, and that hub's champion always intersects its own covered
        set.
        """
        affected = affected_hubs(self._adjacency, covered_edges)
        if self._lazy and self._exact is not None:
            retained = {
                hub
                for hub in affected
                if (champ := self._champion_cache.get(hub)) is not None
                and champ.exact
                and champ.covered.isdisjoint(covered_edges)
            }
            affected -= retained
            self._retained |= retained
        self._dirty |= affected

    def _add_push(self, edge: Edge) -> None:
        self.schedule.add_push(edge)
        if self._mirror is not None:
            self._mirror.add_push(edge)

    def _add_pull(self, edge: Edge) -> None:
        self.schedule.add_pull(edge)
        if self._mirror is not None:
            self._mirror.add_pull(edge)

    def _apply(self, result: DensestResult) -> int:
        """Apply an accepted champion; returns newly covered edge count."""
        hub = result.hub
        newly = result.covered & self._uncovered
        for x in result.x_selected:
            self._add_push((x, hub))
        for y in result.y_selected:
            self._add_pull((hub, y))
        for edge in result.covered:
            u, v = edge
            if u != hub and v != hub:
                self.schedule.cover_via_hub(edge, hub)
        self._uncovered -= result.covered
        if self._mirror is not None:
            self._mirror.cover(result.covered, result.covered_ids)
        return len(newly)

    def _beats_singletons(self, result: DensestResult) -> bool:
        """Acceptance rule preserving the ≤-hybrid cost invariant.

        Accept a champion only if its cost per element does not exceed the
        cheapest direct-service price of *any* edge it covers: then every
        covered element is charged at most its hybrid cost ``c*``, so the
        final schedule never exceeds the hybrid baseline (the same charging
        argument that bounds sequential greedy SET-COVER).
        """
        cheapest = min(
            hybrid_edge_cost(edge, self.workload) for edge in result.covered
        )
        return result.cost_per_element <= cheapest + COST_EPS

    def _sync_session_stats(self) -> None:
        """Mirror the exact-oracle session counters into ``self.stats``.

        Called after every round (not just at the end of :meth:`run`) so
        callers driving :meth:`run_round` directly see counters as
        current as the inline ones (``oracle_calls`` etc.).
        """
        if self._exact is not None:
            self.stats.warm_solves = self._exact.warm_solves
            self.stats.preflow_repairs = self._exact.preflow_repairs
            self.stats.flow_passes = self._exact.flow_passes
            flow_stats = self._exact.flow_stats
            self.stats.kernel_invocations = flow_stats.kernel_invocations
            self.stats.batched_solves = flow_stats.batched_solves
            self.stats.batched_blocks = flow_stats.batched_blocks

    @trace.traced("scheduler.round")
    def run_round(self) -> int:
        """One bulk round; returns the number of edges covered."""
        champions = self._champions()
        self._sync_session_stats()
        if not champions:
            return 0
        covered_this_round = 0
        touched_legs: set[Edge] = set()
        applied: list[DensestResult] = []
        best_cpe = champions[0].cost_per_element
        threshold = best_cpe * self.acceptance_slack + COST_EPS
        for result in champions:
            if result.cost_per_element > threshold or not self._beats_singletons(
                result
            ):
                self.stats.champions_rejected += 1
                continue
            hub = result.hub
            legs = {(x, hub) for x in result.x_selected}
            legs |= {(hub, y) for y in result.y_selected}
            newly = result.covered & self._uncovered
            # Conflict: a previously accepted champion consumed one of our
            # elements or scheduled one of our legs (stale weights/counts).
            if len(newly) != len(result.covered) or (legs & touched_legs):
                self.stats.champions_rejected += 1
                self._dirty.add(hub)  # recompute a fresh champion next round
                continue
            covered_this_round += self._apply(result)
            touched_legs |= legs
            applied.append(result)
            # the acceptance pays the hub's own legs, which can lower its
            # true optimum below any previously certified bound
            self._opt_bound.pop(hub, None)
            self.stats.champions_accepted += 1
        for result in applied:
            self._mark_affected(result.covered)
        self.stats.rounds += 1
        self.stats.round_coverage.append(covered_this_round)
        return covered_this_round

    def run(self, max_rounds: int = 50) -> RequestSchedule:
        """Run rounds to exhaustion, then finish remaining edges hybrid.

        Remaining singletons are served with the hybrid rule, mirroring
        CHITCHAT's singleton candidates: once no hub champion beats the
        per-edge cost ``c*``, direct service is the greedy-optimal move
        for every leftover edge anyway.
        """
        with trace.span("scheduler.run") as span:
            for _ in range(max_rounds):
                if self.run_round() == 0:
                    break
            span.set(rounds=self.stats.rounds)
        rank = self._rank
        for edge in sorted(self._uncovered, key=lambda e: (rank[e[0]], rank[e[1]])):
            u, v = edge
            if self.workload.rp(u) <= self.workload.rc(v):
                self._add_push(edge)
            else:
                self._add_pull(edge)
            self.stats.singleton_fallbacks += 1
        self._uncovered.clear()
        if self._mirror is not None:
            self._mirror.cover_all()
        self._sync_session_stats()
        return self.schedule


def batched_chitchat_schedule(
    graph: GraphView,
    workload: Workload,
    max_cross_edges: int | None = None,
    acceptance_slack: float = 2.0,
    max_rounds: int = 50,
    backend: str = "auto",
    lazy: bool = True,
    oracle: str = "peel",
    epsilon: float = 0.0,
    warm: bool = True,
    batch_k: int | None = None,
    method: str = "auto",
) -> RequestSchedule:
    """One-shot BATCHEDCHITCHAT run returning a feasible schedule."""
    runner = BatchedChitchat(
        graph,
        workload,
        max_cross_edges,
        acceptance_slack,
        backend=backend,
        lazy=lazy,
        oracle=oracle,
        epsilon=epsilon,
        warm=warm,
        batch_k=batch_k,
        method=method,
    )
    return runner.run(max_rounds)


def batched_chitchat_with_stats(
    graph: GraphView,
    workload: Workload,
    max_cross_edges: int | None = None,
    acceptance_slack: float = 2.0,
    max_rounds: int = 50,
    backend: str = "auto",
    lazy: bool = True,
    oracle: str = "peel",
    epsilon: float = 0.0,
    warm: bool = True,
    batch_k: int | None = None,
    method: str = "auto",
) -> tuple[RequestSchedule, BatchedStats]:
    """Like :func:`batched_chitchat_schedule`, returning diagnostics too."""
    runner = BatchedChitchat(
        graph,
        workload,
        max_cross_edges,
        acceptance_slack,
        backend=backend,
        lazy=lazy,
        oracle=oracle,
        epsilon=epsilon,
        warm=warm,
        batch_k=batch_k,
        method=method,
    )
    schedule = runner.run(max_rounds)
    return schedule, runner.stats


def quality_gap_vs_hybrid(
    graph: GraphView, workload: Workload, schedule: RequestSchedule
) -> float:
    """Improvement ratio over the hybrid baseline (reporting helper)."""
    base = schedule_cost(hybrid_schedule(graph, workload), workload)
    return base / schedule_cost(schedule, workload)


def champion_is_profitable(result: DensestResult, workload: Workload) -> bool:
    """Whether a champion beats serving its covered edges individually.

    True when its cost-per-element is below the mean hybrid cost of the
    edges it covers — a cheap sanity filter exposed for experimentation.
    """
    if not result.covered:
        return False
    mean_hybrid = sum(
        hybrid_edge_cost(edge, workload) for edge in result.covered
    ) / len(result.covered)
    return result.cost_per_element <= mean_hybrid
