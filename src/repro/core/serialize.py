"""Persistence for request schedules and workloads.

A request schedule is an operational artifact: it is computed offline
(possibly on a Hadoop cluster, as in the paper) and then *deployed* to the
application servers, which keep the per-user push/pull sets in memory.
This module defines the interchange format — line-oriented JSON with an
explicit version header — plus save/load round-trips for schedules and
workloads, so schedules can be computed by one process (or the
``repro-schedule`` CLI) and served by another.

Format (one JSON object per line, ``.gz`` transparently supported)::

    {"kind": "header", "format": "repro-schedule", "version": 1, ...}
    {"kind": "push", "edge": [u, v]}
    {"kind": "pull", "edge": [u, v]}
    {"kind": "cover", "edge": [u, v], "hub": w}

Node ids must be JSON-representable (ints or strings); tuples round-trip
as lists, so integer-id graphs — the generators' output — are exact.
"""

from __future__ import annotations

import gzip
import io
import json
from pathlib import Path

from repro.core.schedule import RequestSchedule
from repro.errors import ScheduleError, WorkloadError
from repro.workload.rates import Workload

SCHEDULE_FORMAT = "repro-schedule"
WORKLOAD_FORMAT = "repro-workload"
FORMAT_VERSION = 1


def _open_text(path: str | Path, mode: str) -> io.TextIOBase:
    path = Path(path)
    if path.suffix == ".gz":
        return gzip.open(path, mode + "t", encoding="utf-8")  # type: ignore[return-value]
    return open(path, mode, encoding="utf-8")


def _edge_key(edge) -> list:
    return [edge[0], edge[1]]


def _edge_from(value) -> tuple:
    if not isinstance(value, list) or len(value) != 2:
        raise ScheduleError(f"malformed edge record {value!r}")
    return (value[0], value[1])


# ----------------------------------------------------------------------
# Schedules
# ----------------------------------------------------------------------
def save_schedule(
    schedule: RequestSchedule,
    path: str | Path,
    metadata: dict | None = None,
) -> int:
    """Write ``schedule`` to ``path``; returns the number of records.

    ``metadata`` (e.g. the generating algorithm and graph fingerprint) is
    stored in the header and returned by :func:`load_schedule`.
    """
    records = 0
    with _open_text(path, "w") as handle:
        header = {
            "kind": "header",
            "format": SCHEDULE_FORMAT,
            "version": FORMAT_VERSION,
            "push_edges": len(schedule.push),
            "pull_edges": len(schedule.pull),
            "hub_covers": len(schedule.hub_cover),
            "metadata": metadata or {},
        }
        handle.write(json.dumps(header) + "\n")
        for edge in sorted(schedule.push, key=repr):
            handle.write(json.dumps({"kind": "push", "edge": _edge_key(edge)}) + "\n")
            records += 1
        for edge in sorted(schedule.pull, key=repr):
            handle.write(json.dumps({"kind": "pull", "edge": _edge_key(edge)}) + "\n")
            records += 1
        for edge, hub in sorted(schedule.hub_cover.items(), key=repr):
            handle.write(
                json.dumps({"kind": "cover", "edge": _edge_key(edge), "hub": hub})
                + "\n"
            )
            records += 1
    return records


def load_schedule(path: str | Path) -> tuple[RequestSchedule, dict]:
    """Read a schedule file; returns ``(schedule, header_metadata)``.

    Raises :class:`ScheduleError` on a missing/mismatched header, an
    unknown record kind, or record counts that disagree with the header
    (truncated file detection).
    """
    schedule = RequestSchedule()
    with _open_text(path, "r") as handle:
        first = handle.readline()
        if not first:
            raise ScheduleError(f"{path}: empty schedule file")
        header = json.loads(first)
        if header.get("format") != SCHEDULE_FORMAT:
            raise ScheduleError(
                f"{path}: not a {SCHEDULE_FORMAT} file (format={header.get('format')!r})"
            )
        if header.get("version") != FORMAT_VERSION:
            raise ScheduleError(
                f"{path}: unsupported version {header.get('version')!r}"
            )
        for lineno, line in enumerate(handle, start=2):
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            kind = record.get("kind")
            if kind == "push":
                schedule.add_push(_edge_from(record["edge"]))
            elif kind == "pull":
                schedule.add_pull(_edge_from(record["edge"]))
            elif kind == "cover":
                schedule.cover_via_hub(_edge_from(record["edge"]), record["hub"])
            else:
                raise ScheduleError(f"{path}:{lineno}: unknown record kind {kind!r}")
    if (
        len(schedule.push) != header["push_edges"]
        or len(schedule.pull) != header["pull_edges"]
        or len(schedule.hub_cover) != header["hub_covers"]
    ):
        raise ScheduleError(f"{path}: record counts disagree with header (truncated?)")
    return schedule, header.get("metadata", {})


# ----------------------------------------------------------------------
# Workloads
# ----------------------------------------------------------------------
def save_workload(workload: Workload, path: str | Path) -> int:
    """Write per-user rates as line JSON; returns the number of users."""
    users = sorted(workload.users, key=repr)
    with _open_text(path, "w") as handle:
        header = {
            "kind": "header",
            "format": WORKLOAD_FORMAT,
            "version": FORMAT_VERSION,
            "users": len(users),
        }
        handle.write(json.dumps(header) + "\n")
        for user in users:
            handle.write(
                json.dumps(
                    {
                        "kind": "rates",
                        "user": user,
                        "rp": workload.rp(user),
                        "rc": workload.rc(user),
                    }
                )
                + "\n"
            )
    return len(users)


def load_workload(path: str | Path) -> Workload:
    """Read a workload file written by :func:`save_workload`."""
    production: dict = {}
    consumption: dict = {}
    with _open_text(path, "r") as handle:
        first = handle.readline()
        if not first:
            raise WorkloadError(f"{path}: empty workload file")
        header = json.loads(first)
        if header.get("format") != WORKLOAD_FORMAT:
            raise WorkloadError(
                f"{path}: not a {WORKLOAD_FORMAT} file (format={header.get('format')!r})"
            )
        for line in handle:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            if record.get("kind") != "rates":
                raise WorkloadError(f"{path}: unknown record kind {record.get('kind')!r}")
            production[record["user"]] = float(record["rp"])
            consumption[record["user"]] = float(record["rc"])
    if len(production) != header["users"]:
        raise WorkloadError(f"{path}: user count disagrees with header (truncated?)")
    return Workload(production=production, consumption=consumption)
