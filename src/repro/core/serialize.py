"""Persistence for request schedules, workloads, and churn artifacts.

A request schedule is an operational artifact: it is computed offline
(possibly on a Hadoop cluster, as in the paper) and then *deployed* to the
application servers, which keep the per-user push/pull sets in memory.
This module defines the interchange format — line-oriented JSON with an
explicit version header — plus save/load round-trips for schedules,
workloads, churn-event scripts, and delta-maintenance state, so schedules
can be computed by one process (or the ``repro-schedule`` CLI) and served,
updated, and re-served by another.

Format (one JSON object per line, ``.gz`` transparently supported)::

    {"kind": "header", "format": "repro-schedule", "version": 1, ...}
    {"kind": "push", "edge": [u, v]}
    {"kind": "pull", "edge": [u, v]}
    {"kind": "cover", "edge": [u, v], "hub": w}

Churn scripts (``repro-churn``) store one event per line; delta state
(``repro-delta``) stores the full warm-session snapshot — live edges,
current rates, the maintained schedule, and the pending residue — so a
:class:`~repro.core.delta.DeltaScheduler` round-trips across processes
mid-stream.

Node ids must be JSON-representable (ints or strings); tuples round-trip
as lists, so integer-id graphs — the generators' output — are exact.
"""

from __future__ import annotations

import gzip
import io
import json
from pathlib import Path

from repro.core.schedule import RequestSchedule
from repro.errors import ScheduleError, WorkloadError
from repro.graph.digraph import SocialGraph
from repro.workload.churn import ChurnEvent
from repro.workload.rates import Workload

SCHEDULE_FORMAT = "repro-schedule"
WORKLOAD_FORMAT = "repro-workload"
CHURN_FORMAT = "repro-churn"
DELTA_FORMAT = "repro-delta"
FORMAT_VERSION = 1


def _open_text(path: str | Path, mode: str) -> io.TextIOBase:
    path = Path(path)
    if path.suffix == ".gz":
        return gzip.open(path, mode + "t", encoding="utf-8")  # type: ignore[return-value]
    return open(path, mode, encoding="utf-8")


def _edge_key(edge) -> list:
    return [edge[0], edge[1]]


def _edge_from(value) -> tuple:
    if not isinstance(value, list) or len(value) != 2:
        raise ScheduleError(f"malformed edge record {value!r}")
    return (value[0], value[1])


# ----------------------------------------------------------------------
# Schedules
# ----------------------------------------------------------------------
def save_schedule(
    schedule: RequestSchedule,
    path: str | Path,
    metadata: dict | None = None,
) -> int:
    """Write ``schedule`` to ``path``; returns the number of records.

    ``metadata`` (e.g. the generating algorithm and graph fingerprint) is
    stored in the header and returned by :func:`load_schedule`.
    """
    records = 0
    with _open_text(path, "w") as handle:
        header = {
            "kind": "header",
            "format": SCHEDULE_FORMAT,
            "version": FORMAT_VERSION,
            "push_edges": len(schedule.push),
            "pull_edges": len(schedule.pull),
            "hub_covers": len(schedule.hub_cover),
            "metadata": metadata or {},
        }
        handle.write(json.dumps(header) + "\n")
        for edge in sorted(schedule.push, key=repr):
            handle.write(json.dumps({"kind": "push", "edge": _edge_key(edge)}) + "\n")
            records += 1
        for edge in sorted(schedule.pull, key=repr):
            handle.write(json.dumps({"kind": "pull", "edge": _edge_key(edge)}) + "\n")
            records += 1
        for edge, hub in sorted(schedule.hub_cover.items(), key=repr):
            handle.write(
                json.dumps({"kind": "cover", "edge": _edge_key(edge), "hub": hub})
                + "\n"
            )
            records += 1
    return records


def load_schedule(path: str | Path) -> tuple[RequestSchedule, dict]:
    """Read a schedule file; returns ``(schedule, header_metadata)``.

    Raises :class:`ScheduleError` on a missing/mismatched header, an
    unknown record kind, or record counts that disagree with the header
    (truncated file detection).
    """
    schedule = RequestSchedule()
    with _open_text(path, "r") as handle:
        first = handle.readline()
        if not first:
            raise ScheduleError(f"{path}: empty schedule file")
        header = json.loads(first)
        if header.get("format") != SCHEDULE_FORMAT:
            raise ScheduleError(
                f"{path}: not a {SCHEDULE_FORMAT} file (format={header.get('format')!r})"
            )
        if header.get("version") != FORMAT_VERSION:
            raise ScheduleError(
                f"{path}: unsupported version {header.get('version')!r}"
            )
        for lineno, line in enumerate(handle, start=2):
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            kind = record.get("kind")
            if kind == "push":
                schedule.add_push(_edge_from(record["edge"]))
            elif kind == "pull":
                schedule.add_pull(_edge_from(record["edge"]))
            elif kind == "cover":
                schedule.cover_via_hub(_edge_from(record["edge"]), record["hub"])
            else:
                raise ScheduleError(f"{path}:{lineno}: unknown record kind {kind!r}")
    if (
        len(schedule.push) != header["push_edges"]
        or len(schedule.pull) != header["pull_edges"]
        or len(schedule.hub_cover) != header["hub_covers"]
    ):
        raise ScheduleError(f"{path}: record counts disagree with header (truncated?)")
    return schedule, header.get("metadata", {})


# ----------------------------------------------------------------------
# Workloads
# ----------------------------------------------------------------------
def save_workload(workload: Workload, path: str | Path) -> int:
    """Write per-user rates as line JSON; returns the number of users."""
    users = sorted(workload.users, key=repr)
    with _open_text(path, "w") as handle:
        header = {
            "kind": "header",
            "format": WORKLOAD_FORMAT,
            "version": FORMAT_VERSION,
            "users": len(users),
        }
        handle.write(json.dumps(header) + "\n")
        for user in users:
            handle.write(
                json.dumps(
                    {
                        "kind": "rates",
                        "user": user,
                        "rp": workload.rp(user),
                        "rc": workload.rc(user),
                    }
                )
                + "\n"
            )
    return len(users)


def load_workload(path: str | Path) -> Workload:
    """Read a workload file written by :func:`save_workload`."""
    production: dict = {}
    consumption: dict = {}
    with _open_text(path, "r") as handle:
        first = handle.readline()
        if not first:
            raise WorkloadError(f"{path}: empty workload file")
        header = json.loads(first)
        if header.get("format") != WORKLOAD_FORMAT:
            raise WorkloadError(
                f"{path}: not a {WORKLOAD_FORMAT} file (format={header.get('format')!r})"
            )
        for line in handle:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            if record.get("kind") != "rates":
                raise WorkloadError(f"{path}: unknown record kind {record.get('kind')!r}")
            production[record["user"]] = float(record["rp"])
            consumption[record["user"]] = float(record["rc"])
    if len(production) != header["users"]:
        raise WorkloadError(f"{path}: user count disagrees with header (truncated?)")
    return Workload(production=production, consumption=consumption)


# ----------------------------------------------------------------------
# Churn-event scripts
# ----------------------------------------------------------------------
def save_events(events, path: str | Path, metadata: dict | None = None) -> int:
    """Write a churn script as line JSON; returns the event count.

    Events are written in stream order (order is semantic: removals name
    edges earlier adds created).
    """
    events = list(events)
    with _open_text(path, "w") as handle:
        header = {
            "kind": "header",
            "format": CHURN_FORMAT,
            "version": FORMAT_VERSION,
            "events": len(events),
            "metadata": metadata or {},
        }
        handle.write(json.dumps(header) + "\n")
        for event in events:
            if event.kind == "rate":
                record = {
                    "kind": "rate",
                    "user": event.user,
                    "rp": event.rp,
                    "rc": event.rc,
                }
            else:
                record = {"kind": event.kind, "edge": _edge_key(event.edge)}
            handle.write(json.dumps(record) + "\n")
    return len(events)


def load_events(path: str | Path) -> tuple[list[ChurnEvent], dict]:
    """Read a churn script; returns ``(events, header_metadata)``."""
    events: list[ChurnEvent] = []
    with _open_text(path, "r") as handle:
        first = handle.readline()
        if not first:
            raise WorkloadError(f"{path}: empty churn file")
        header = json.loads(first)
        if header.get("format") != CHURN_FORMAT:
            raise WorkloadError(
                f"{path}: not a {CHURN_FORMAT} file (format={header.get('format')!r})"
            )
        if header.get("version") != FORMAT_VERSION:
            raise WorkloadError(
                f"{path}: unsupported version {header.get('version')!r}"
            )
        for lineno, line in enumerate(handle, start=2):
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            kind = record.get("kind")
            if kind in ("add", "remove"):
                events.append(
                    ChurnEvent(kind=kind, edge=_edge_from(record["edge"]))
                )
            elif kind == "rate":
                events.append(
                    ChurnEvent(
                        kind="rate",
                        user=record["user"],
                        rp=float(record["rp"]),
                        rc=float(record["rc"]),
                    )
                )
            else:
                raise WorkloadError(
                    f"{path}:{lineno}: unknown record kind {kind!r}"
                )
    if len(events) != header["events"]:
        raise WorkloadError(
            f"{path}: event count disagrees with header (truncated?)"
        )
    return events, header.get("metadata", {})


# ----------------------------------------------------------------------
# Delta-maintenance state
# ----------------------------------------------------------------------
def save_delta_state(delta, path: str | Path, metadata: dict | None = None) -> int:
    """Snapshot a :class:`~repro.core.delta.DeltaScheduler`; returns records.

    Persists everything the next process needs to continue the stream:
    the live edge set, the current (possibly churn-drifted) rates, the
    maintained schedule, and the residue still awaiting repair.  The warm
    flow preflows themselves are per-process caches and are rebuilt on
    demand after :func:`load_delta_state`.
    """
    records = 0
    edges = sorted(delta.graph.edges(), key=repr)
    users = sorted(delta.workload.users, key=repr)
    residue = sorted(delta._residue, key=repr)
    schedule = delta.schedule
    with _open_text(path, "w") as handle:
        header = {
            "kind": "header",
            "format": DELTA_FORMAT,
            "version": FORMAT_VERSION,
            "edges": len(edges),
            "users": len(users),
            "push_edges": len(schedule.push),
            "pull_edges": len(schedule.pull),
            "hub_covers": len(schedule.hub_cover),
            "residue": len(residue),
            "metadata": metadata or {},
        }
        handle.write(json.dumps(header) + "\n")
        for edge in edges:
            handle.write(json.dumps({"kind": "edge", "edge": _edge_key(edge)}) + "\n")
            records += 1
        for user in users:
            handle.write(
                json.dumps(
                    {
                        "kind": "rates",
                        "user": user,
                        "rp": delta.workload.rp(user),
                        "rc": delta.workload.rc(user),
                    }
                )
                + "\n"
            )
            records += 1
        for edge in sorted(schedule.push, key=repr):
            handle.write(json.dumps({"kind": "push", "edge": _edge_key(edge)}) + "\n")
            records += 1
        for edge in sorted(schedule.pull, key=repr):
            handle.write(json.dumps({"kind": "pull", "edge": _edge_key(edge)}) + "\n")
            records += 1
        for edge, hub in sorted(schedule.hub_cover.items(), key=repr):
            handle.write(
                json.dumps({"kind": "cover", "edge": _edge_key(edge), "hub": hub})
                + "\n"
            )
            records += 1
        for edge in residue:
            handle.write(
                json.dumps({"kind": "residue", "edge": _edge_key(edge)}) + "\n"
            )
            records += 1
    return records


def load_delta_state(path: str | Path, **options):
    """Rebuild a :class:`~repro.core.delta.DeltaScheduler` from a snapshot.

    ``options`` (``oracle=``, ``warm=``, ``method=``, …) forward to the
    scheduler constructor, so the resuming process picks its own oracle
    stack; returns ``(delta, header_metadata)``.
    """
    from repro.core.delta import DeltaScheduler

    graph = SocialGraph()
    production: dict = {}
    consumption: dict = {}
    schedule = RequestSchedule()
    residue: list = []
    with _open_text(path, "r") as handle:
        first = handle.readline()
        if not first:
            raise ScheduleError(f"{path}: empty delta-state file")
        header = json.loads(first)
        if header.get("format") != DELTA_FORMAT:
            raise ScheduleError(
                f"{path}: not a {DELTA_FORMAT} file (format={header.get('format')!r})"
            )
        if header.get("version") != FORMAT_VERSION:
            raise ScheduleError(
                f"{path}: unsupported version {header.get('version')!r}"
            )
        for lineno, line in enumerate(handle, start=2):
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            kind = record.get("kind")
            if kind == "edge":
                graph.add_edge(*_edge_from(record["edge"]))
            elif kind == "rates":
                production[record["user"]] = float(record["rp"])
                consumption[record["user"]] = float(record["rc"])
            elif kind == "push":
                schedule.add_push(_edge_from(record["edge"]))
            elif kind == "pull":
                schedule.add_pull(_edge_from(record["edge"]))
            elif kind == "cover":
                schedule.cover_via_hub(_edge_from(record["edge"]), record["hub"])
            elif kind == "residue":
                residue.append(_edge_from(record["edge"]))
            else:
                raise ScheduleError(
                    f"{path}:{lineno}: unknown record kind {kind!r}"
                )
    counts = (
        len(list(graph.edges())),
        len(production),
        len(schedule.push),
        len(schedule.pull),
        len(schedule.hub_cover),
        len(residue),
    )
    expected = tuple(
        header[key]
        for key in ("edges", "users", "push_edges", "pull_edges", "hub_covers", "residue")
    )
    if counts != expected:
        raise ScheduleError(
            f"{path}: record counts disagree with header (truncated?)"
        )
    delta = DeltaScheduler(
        graph,
        Workload(production=production, consumption=consumption),
        schedule,
        **options,
    )
    delta._residue.update(residue)
    return delta, header.get("metadata", {})
