"""PARALLELNOSY: the scalable parallel heuristic (paper section 3.2).

PARALLELNOSY trades CHITCHAT's approximation guarantee for scalability via
two simplifications: it only considers single-consumer hub-graphs
``G(X, w, {y})`` (one per social edge ``w -> y``), and it makes many
optimization decisions per iteration in parallel, using edge locks to keep
concurrent decisions consistent.  Every iteration runs three synchronous
phases:

1. **Candidate selection** — for each edge ``w -> y`` not yet hub-covered,
   build ``X`` (common predecessors whose cross-edge to ``y`` is still
   unscheduled), compute the saved cost ``s(X, w, y)`` (the hybrid cost of
   the covered cross-edges) and the positive cost ``c(X, w, y)`` (the
   not-yet-paid push/pull legs); candidates need positive gain.
2. **Edge locking** — every edge grants its lock to the highest-gain
   candidate requesting it (deterministic tie-break on the hub-edge id).
3. **Scheduling decision** — fully locked candidates apply; partially locked
   candidates retry with the subset ``X'`` whose legs they did lock,
   re-checking the gain.

The in-memory engine here executes the phases sequentially but with
identical semantics to the MapReduce formulation in
:mod:`repro.mapreduce.jobs`; tests assert both produce the same schedule.

An edge never scheduled nor covered by the end is served with the hybrid
rule when the schedule is finalized, so the output of any number of
iterations (including zero) is always feasible.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.baselines import hybrid_schedule
from repro.core.cost import hybrid_edge_cost, schedule_cost
from repro.core.hubgraph import single_consumer_hub_graph
from repro.core.schedule import RequestSchedule
from repro.graph.digraph import Edge, Node
from repro.graph.view import GraphView, NeighborSetCache, as_graph_view, edge_list
from repro.workload.rates import Workload


def push_leg_cost(
    workload: Workload,
    push: set[Edge],
    pull: set[Edge],
    x: Node,
    hub: Node,
) -> float:
    """``cX(x -> w)`` from section 3.2: marginal cost of pushing the leg.

    Zero when the push is already scheduled; the full production rate when
    the edge is currently pull-only (the pull stays, so nothing is saved);
    otherwise the production rate minus the hybrid cost ``c*`` the edge
    would have paid anyway.
    """
    edge = (x, hub)
    if edge in push:
        return 0.0
    if edge in pull:
        return workload.rp(x)
    return workload.rp(x) - hybrid_edge_cost(edge, workload)


def pull_leg_cost(
    workload: Workload,
    push: set[Edge],
    pull: set[Edge],
    hub: Node,
    y: Node,
) -> float:
    """``c(w -> y)``: marginal cost of pulling the hub edge (specular)."""
    edge = (hub, y)
    if edge in pull:
        return 0.0
    if edge in push:
        return workload.rc(y)
    return workload.rc(y) - hybrid_edge_cost(edge, workload)


def candidate_gain(
    workload: Workload,
    push: set[Edge],
    pull: set[Edge],
    x_nodes,
    hub: Node,
    consumer: Node,
) -> float:
    """``s(X, w, y) - c(X, w, y)``: saved hybrid cost minus leg costs."""
    saved = sum(hybrid_edge_cost((x, consumer), workload) for x in x_nodes)
    positive = pull_leg_cost(workload, push, pull, hub, consumer)
    positive += sum(push_leg_cost(workload, push, pull, x, hub) for x in x_nodes)
    return saved - positive


@dataclass(frozen=True)
class Candidate:
    """A candidate hub-graph ``G(X, w, {y})`` with its computed gain."""

    hub: Node
    consumer: Node
    x_nodes: tuple[Node, ...]
    gain: float

    @property
    def hub_edge(self) -> Edge:
        """The pull leg ``w -> y`` identifying this candidate."""
        return (self.hub, self.consumer)

    def locked_edges(self) -> list[Edge]:
        """Every edge whose schedule this candidate would modify."""
        edges: list[Edge] = [self.hub_edge]
        for x in self.x_nodes:
            edges.append((x, self.hub))
            edges.append((x, self.consumer))
        return edges


@dataclass
class IterationResult:
    """What one PARALLELNOSY iteration did (for convergence tracking)."""

    iteration: int
    candidates: int
    fully_locked: int
    partially_applied: int
    edges_covered: int
    cost_after: float


@dataclass
class ParallelNosyState:
    """Mutable optimizer state shared across iterations.

    ``covered`` maps each hub-covered cross-edge to its hub, exactly the set
    ``C`` of Algorithm 2 (needed both to avoid double-covering and for the
    incremental-update rules of section 3.3).
    """

    schedule: RequestSchedule = field(default_factory=RequestSchedule)

    @property
    def covered(self) -> dict[Edge, Node]:
        return self.schedule.hub_cover


class ParallelNosyOptimizer:
    """Iteration driver for PARALLELNOSY.

    Parameters
    ----------
    graph, workload:
        The DISSEMINATION instance; ``graph`` may be either adjacency
        backend (see :func:`repro.graph.view.as_graph_view`).
    max_candidate_producers:
        Optional cap on ``|X|`` per candidate (memory bound akin to the
        MapReduce cross-edge bound ``b``); producers with the largest
        per-edge savings are kept.
    backend:
        ``"auto"`` (default) applies the CSR fast path above the size
        threshold; ``"csr"``/``"dict"`` force a backend.
    """

    def __init__(
        self,
        graph: GraphView,
        workload: Workload,
        max_candidate_producers: int | None = None,
        backend: str = "auto",
    ) -> None:
        self.graph = as_graph_view(graph, backend)
        self.workload = workload
        self.max_candidate_producers = max_candidate_producers
        self.state = ParallelNosyState()
        self.history: list[IterationResult] = []
        # the graph is immutable during a run: materialize the edge list
        # once (one C pass on the CSR backend) for the per-iteration scans,
        # and memoize neighborhoods for the per-edge candidate intersections
        self._edges = edge_list(self.graph)
        self._adjacency = NeighborSetCache(self.graph)

    # ------------------------------------------------------------------
    # Cost pieces (section 3.2 formulas; shared with the MapReduce jobs)
    # ------------------------------------------------------------------
    def _gain(self, x_nodes, hub: Node, consumer: Node) -> float:
        """``s(X, w, y) - c(X, w, y)`` for the given producer subset."""
        schedule = self.state.schedule
        return candidate_gain(
            self.workload, schedule.push, schedule.pull, x_nodes, hub, consumer
        )

    # ------------------------------------------------------------------
    # Phases
    # ------------------------------------------------------------------
    def _phase1_candidates(self) -> list[Candidate]:
        """Candidate selection: one potential hub-graph per edge ``w -> y``."""
        candidates: list[Candidate] = []
        covered = self.state.covered
        schedule = self.state.schedule
        for hub, consumer in self._edges:
            if (hub, consumer) in covered:
                continue
            xs = single_consumer_hub_graph(
                self.graph, hub, consumer, schedule, covered, self._adjacency
            )
            if not xs:
                continue
            if (
                self.max_candidate_producers is not None
                and len(xs) > self.max_candidate_producers
            ):
                xs = sorted(
                    xs,
                    key=lambda x: (
                        -hybrid_edge_cost((x, consumer), self.workload),
                        repr(x),
                    ),
                )[: self.max_candidate_producers]
                xs.sort(key=repr)
            gain = self._gain(xs, hub, consumer)
            if gain > 0:
                candidates.append(
                    Candidate(hub, consumer, tuple(xs), gain)
                )
        return candidates

    @staticmethod
    def _phase2_lock(candidates: list[Candidate]) -> dict[Edge, Candidate]:
        """Edge locking: each edge goes to the max-gain requester.

        Ties break on the hub-edge id so the outcome is deterministic and
        identical to the MapReduce reducer's ordering.
        """
        grants: dict[Edge, Candidate] = {}
        for candidate in candidates:
            for edge in candidate.locked_edges():
                holder = grants.get(edge)
                if holder is None or (candidate.gain, repr(candidate.hub_edge)) > (
                    holder.gain,
                    repr(holder.hub_edge),
                ):
                    grants[edge] = candidate
        return grants

    def _phase3_apply(
        self, candidates: list[Candidate], grants: dict[Edge, Candidate]
    ) -> tuple[int, int, int]:
        """Scheduling decision: apply fully/partially locked candidates."""
        fully = partial = covered_edges = 0
        schedule = self.state.schedule
        for candidate in candidates:
            owned = [
                edge
                for edge in candidate.locked_edges()
                if grants.get(edge) is candidate
            ]
            owned_set = set(owned)
            if len(owned) == len(candidate.locked_edges()):
                chosen = candidate.x_nodes
                fully += 1
            else:
                if candidate.hub_edge not in owned_set:
                    continue  # cannot schedule the pull leg: abandon
                chosen = tuple(
                    x
                    for x in candidate.x_nodes
                    if (x, candidate.hub) in owned_set
                    and (x, candidate.consumer) in owned_set
                )
                if not chosen:
                    continue
                if self._gain(chosen, candidate.hub, candidate.consumer) <= 0:
                    continue
                partial += 1
            schedule.add_pull(candidate.hub_edge)
            for x in chosen:
                schedule.add_push((x, candidate.hub))
                schedule.cover_via_hub((x, candidate.consumer), candidate.hub)
                covered_edges += 1
        return fully, partial, covered_edges

    # ------------------------------------------------------------------
    # Driving
    # ------------------------------------------------------------------
    def run_iteration(self) -> IterationResult:
        """Execute one candidate/lock/decide cycle and record the result."""
        candidates = self._phase1_candidates()
        grants = self._phase2_lock(candidates)
        fully, partial, covered = self._phase3_apply(candidates, grants)
        result = IterationResult(
            iteration=len(self.history) + 1,
            candidates=len(candidates),
            fully_locked=fully,
            partially_applied=partial,
            edges_covered=covered,
            cost_after=self._finalized_cost(),
        )
        self.history.append(result)
        return result

    def _finalized_cost(self) -> float:
        """Cost of :meth:`finalize` without materializing the schedule.

        The finalized cost is the partial schedule's cost plus the hybrid
        price ``c*`` of every edge the iterations have not yet touched —
        summed directly, which keeps the per-iteration convergence metric
        (Figure 4's y-axis) O(m) membership checks instead of a full
        schedule copy per iteration.
        """
        schedule = self.state.schedule
        cost = schedule_cost(schedule, self.workload)
        push, pull, covered = schedule.push, schedule.pull, schedule.hub_cover
        workload = self.workload
        for edge in self._edges:
            if edge not in push and edge not in pull and edge not in covered:
                cost += hybrid_edge_cost(edge, workload)
        return cost

    def run(self, max_iterations: int = 20) -> RequestSchedule:
        """Iterate until convergence (no candidate applies) or the cap."""
        for _ in range(max_iterations):
            result = self.run_iteration()
            if result.edges_covered == 0:
                break
        return self.finalize()

    def finalize(self) -> RequestSchedule:
        """Complete the partial schedule with the hybrid rule.

        Edges neither scheduled (``H ∪ L``) nor hub-covered are served with
        the cheaper of push and pull, exactly the completion the gain
        formulas priced via ``c*``.  The internal state is not modified.
        """
        schedule = self.state.schedule
        final = schedule.copy()
        for edge in self._edges:
            if (
                edge not in schedule.push
                and edge not in schedule.pull
                and edge not in schedule.hub_cover
            ):
                u, v = edge
                if self.workload.rp(u) <= self.workload.rc(v):
                    final.add_push(edge)
                else:
                    final.add_pull(edge)
        return final


def parallel_nosy_schedule(
    graph: GraphView,
    workload: Workload,
    max_iterations: int = 20,
    max_candidate_producers: int | None = None,
    backend: str = "auto",
) -> RequestSchedule:
    """Run PARALLELNOSY and return the finalized feasible schedule."""
    optimizer = ParallelNosyOptimizer(
        graph, workload, max_candidate_producers, backend=backend
    )
    return optimizer.run(max_iterations)


def parallel_nosy_with_history(
    graph: GraphView,
    workload: Workload,
    max_iterations: int = 20,
    max_candidate_producers: int | None = None,
    backend: str = "auto",
) -> tuple[RequestSchedule, list[IterationResult]]:
    """Run PARALLELNOSY keeping the per-iteration convergence history.

    The history is what Figure 4 plots: the cost after each iteration,
    converted to an improvement ratio over the hybrid baseline.
    """
    optimizer = ParallelNosyOptimizer(
        graph, workload, max_candidate_producers, backend=backend
    )
    optimizer.run(max_iterations)
    return optimizer.finalize(), optimizer.history


def improvement_history(
    graph: GraphView,
    workload: Workload,
    max_iterations: int = 20,
    max_candidate_producers: int | None = None,
    backend: str = "auto",
) -> list[float]:
    """Predicted improvement ratio over FF after each iteration (Figure 4)."""
    baseline_cost = schedule_cost(hybrid_schedule(graph, workload), workload)
    _, history = parallel_nosy_with_history(
        graph, workload, max_iterations, max_candidate_producers, backend=backend
    )
    return [baseline_cost / item.cost_after for item in history]
