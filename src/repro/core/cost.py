"""The throughput cost model of section 2.1.

The cost of a request schedule ``(H, L)`` is the aggregate rate of data-store
requests it induces::

    c(H, L) = Σ_{u→v ∈ H} rp(u)  +  Σ_{u→v ∈ L} rc(v)

Pushing over ``u -> v`` costs one view update per event ``u`` shares
(rate ``rp(u)``); pulling costs one view query per feed request by ``v``
(rate ``rc(v)``).  Hub-covered edges are free — that is the whole point of
social piggybacking.  A user's own view is excluded by convention (updating
and querying it is implicit in every schedule, so it cancels in comparisons).

*Predicted throughput* (section 4.2) is the inverse of the cost, and the
*predicted improvement ratio* of algorithm A over baseline B is
``c_B / c_A``.
"""

from __future__ import annotations

import numpy as np

from repro.core.schedule import RequestSchedule
from repro.errors import ScheduleError, WorkloadError
from repro.graph.digraph import Edge
from repro.workload.rates import Workload

#: Edge-set size above which cost aggregation switches to the vectorized
#: path (dense rate vectors fancy-indexed by endpoint arrays).  Below it the
#: plain Python loop wins on constant factors.
_BATCH_COST_THRESHOLD = 2048


def _batch_edge_cost(
    edges: "set[Edge] | frozenset[Edge]",
    rates: np.ndarray,
    endpoint: int,
) -> float:
    """Sum ``rates[edge[endpoint]]`` over ``edges`` via one numpy gather.

    Raises ``IndexError`` for ids outside ``0..n-1`` (numpy would wrap
    negatives silently); the caller falls back to the scalar loop, which
    reports the offending user via :class:`WorkloadError`.
    """
    if not edges:
        return 0.0
    idx = np.fromiter(
        (edge[endpoint] for edge in edges), dtype=np.int64, count=len(edges)
    )
    if int(idx.min()) < 0 or int(idx.max()) >= rates.shape[0]:
        raise IndexError("edge endpoint outside the workload's dense id range")
    return float(rates[idx].sum())


def _push_pull_costs(
    schedule: RequestSchedule, workload: Workload
) -> tuple[float, float]:
    """Batch push/pull cost accounting with a scalar fallback.

    Large schedules over dense-id workloads aggregate through
    :meth:`Workload.as_arrays`; anything else (small schedules, non-integer
    user ids) takes the per-edge loop.
    """
    if len(schedule.push) + len(schedule.pull) >= _BATCH_COST_THRESHOLD:
        try:
            rp, rc = workload.as_arrays()
            return (
                _batch_edge_cost(schedule.push, rp, 0),
                _batch_edge_cost(schedule.pull, rc, 1),
            )
        except (WorkloadError, TypeError, IndexError):
            pass  # non-dense ids: price edge by edge below
    push_cost = sum(workload.rp(u) for (u, _v) in schedule.push)
    pull_cost = sum(workload.rc(v) for (_u, v) in schedule.pull)
    return push_cost, pull_cost


def push_edge_cost(edge: Edge, workload: Workload) -> float:
    """Rate cost of serving ``edge`` by push: ``rp(producer)``."""
    return workload.rp(edge[0])


def pull_edge_cost(edge: Edge, workload: Workload) -> float:
    """Rate cost of serving ``edge`` by pull: ``rc(consumer)``."""
    return workload.rc(edge[1])


def hybrid_edge_cost(edge: Edge, workload: Workload) -> float:
    """``c*(u -> v) = min(rp(u), rc(v))``.

    The per-edge cost of the hybrid schedule of Silberstein et al. (the
    FEEDINGFRENZY baseline), which serves each edge with the cheaper of a
    push and a pull.  CHITCHAT uses it to price singleton set-cover
    candidates and PARALLELNOSY as the opportunity cost of a hub.
    """
    return min(workload.rp(edge[0]), workload.rc(edge[1]))


def schedule_cost(schedule: RequestSchedule, workload: Workload) -> float:
    """Total cost ``c(H, L)`` of a schedule under ``workload``.

    An edge present in both ``H`` and ``L`` pays both costs — this happens
    when piggybacking needs a push on an edge that an earlier decision
    already serves by pull (PARALLELNOSY's ``cX`` case analysis, section 3.2).

    Large schedules on dense-integer workloads aggregate through the
    vectorized batch path (see :meth:`Workload.as_arrays`).
    """
    push_cost, pull_cost = _push_pull_costs(schedule, workload)
    return push_cost + pull_cost


def predicted_throughput(schedule: RequestSchedule, workload: Workload) -> float:
    """Inverse cost (section 4.2's throughput estimate)."""
    cost = schedule_cost(schedule, workload)
    if cost <= 0:
        raise ScheduleError("schedule has zero cost; predicted throughput undefined")
    return 1.0 / cost


def improvement_ratio(
    schedule: RequestSchedule,
    baseline: RequestSchedule,
    workload: Workload,
) -> float:
    """Predicted improvement ratio ``t_A / t_baseline = c_baseline / c_A``."""
    cost = schedule_cost(schedule, workload)
    base = schedule_cost(baseline, workload)
    if cost <= 0:
        raise ScheduleError("schedule has zero cost; ratio undefined")
    return base / cost


def cost_breakdown(schedule: RequestSchedule, workload: Workload) -> dict[str, float]:
    """Split the total cost into its push and pull components."""
    push_cost, pull_cost = _push_pull_costs(schedule, workload)
    return {
        "push_cost": push_cost,
        "pull_cost": pull_cost,
        "total_cost": push_cost + pull_cost,
    }
