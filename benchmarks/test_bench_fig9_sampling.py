"""E6+E7 / Figure 9 — CHITCHAT vs PARALLELNOSY on graph samples.

Paper: CHITCHAT beats PARALLELNOSY on 5M-edge samples (the headroom of
social piggybacking); gains decay toward 1.0 as the read/write ratio grows
to 100; breadth-first samples (hub structure preserved) show larger gains
than random-walk samples.
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.experiments.fig9_chitchat_vs_nosy import Fig9Config, run


def test_bench_fig9(benchmark, bench_scale):
    config = Fig9Config(
        scale=min(bench_scale, 0.3),  # CHITCHAT on samples is the slow part
        sample_edge_fraction=0.12,
        num_samples=2,
        read_write_ratios=(1.0, 5.0, 20.0, 100.0),
        nosy_iterations=8,
    )
    result = run_once(benchmark, lambda: run(config))
    print()
    print(result.to_text())

    ratios = result.read_write_ratios
    for (method, dataset, algorithm), series in result.series.items():
        # improvement over FF is never below parity
        assert all(v >= 1.0 - 1e-9 for v in series), (method, dataset, algorithm)
        # gains decay as reads dominate (r/w -> 100 pushes FF toward optimal)
        assert series[0] >= series[-1] - 1e-9
        # at r/w = 100 the hybrid is near-optimal: ratio close to 1
        assert series[ratios.index(100.0)] < 1.2

    # CHITCHAT leads PARALLELNOSY at the write-heavy end on BFS samples
    for dataset in ("flickr", "twitter"):
        cc = result.series[("bfs", dataset, "ChitChat")]
        pn = result.series[("bfs", dataset, "ParallelNosy")]
        assert cc[0] >= pn[0] - 0.05, dataset

    # BFS samples yield gains at least comparable to random-walk samples
    for dataset in ("flickr", "twitter"):
        bfs = result.series[("bfs", dataset, "ChitChat")][0]
        rw = result.series[("random_walk", dataset, "ChitChat")][0]
        assert bfs >= rw - 0.15, dataset
