"""Shared measurement collectors for the CHITCHAT perf-regression suite.

Each collector runs a deterministic experiment at a given ``scale`` and
returns plain dicts (rows + headline ratios) so the same code backs both
the pytest benchmarks (which add assertions) and the machine-readable
``benchmarks/run_benchmarks.py`` emitter that records the perf trajectory
across commits.
"""

from __future__ import annotations

import os
import time

from repro.core.baselines import hybrid_schedule
from repro.core.batched import batched_chitchat_with_stats
from repro.core.chitchat import ChitchatScheduler
from repro.core.cost import schedule_cost
from repro.core.coverage import validate_schedule
from repro.core.delta import DeltaScheduler
from repro.core.parallelnosy import parallel_nosy_schedule
from repro.experiments.datasets import e10_twitter_sample
from repro.graph.generators import social_copying_graph
from repro.graph.view import as_graph_view, to_csr
from repro.obs import chrome_trace, get_tracer, validate_chrome_trace
from repro.shard import sharded_chitchat_schedule
from repro.workload.churn import churn_stream
from repro.workload.ldbc import ldbc_instance
from repro.workload.rates import Workload, log_degree_workload

#: E12 instance at bench scale 1.0 (default scale 0.25 gives the n=3000
#: acceptance instance).  Dense enough that eager invalidation's wedge
#: blow-up — the cost the lazy heap eliminates — dominates.
E12_BASE_NODES = 12_000
E12_OUT_DEGREE = 24
E12_READ_WRITE_RATIO = 8.0

#: E13 instance family (scale 0.25 gives the n=3000 acceptance instance,
#: where the exact schedule prices strictly below the peel's).  Moderate
#: degree keeps hub-graphs within the exact oracle's sweet spot; at
#: smaller quick-tier sizes greedy path-dependence can flip the cost
#: comparison by <0.1% either way, so only the acceptance instance
#: carries the hard cost invariant.
E13_BASE_NODES = 12_000
E13_OUT_DEGREE = 10
E13_READ_WRITE_RATIO = 5.0

#: E16 churn instance (scale 0.25 gives the acceptance point: n=3000
#: with a 10k-event stream).  The event volume scales with the instance
#: so the churn fraction — roughly a third of the edge set turned over —
#: stays comparable across tiers.
E16_BASE_NODES = 12_000
E16_BASE_EVENTS = 40_000
E16_OUT_DEGREE = 10
E16_READ_WRITE_RATIO = 5.0
E16_CHECKPOINTS = 5


def _schedules_equal(a, b) -> bool:
    return a.push == b.push and a.pull == b.pull and a.hub_cover == b.hub_cover


def e12_lazy_vs_eager(scale: float) -> dict:
    """E12 — lazy vs eager CHITCHAT on the CSR backend.

    Returns rows for both modes plus the headline ``call_ratio`` (eager
    full peels / lazy full peels) and ``wall_ratio``; ``equal`` certifies
    the two schedules are byte-identical.
    """
    n = max(600, int(E12_BASE_NODES * scale))
    graph = social_copying_graph(
        num_nodes=n,
        out_degree=E12_OUT_DEGREE,
        copy_fraction=0.7,
        reciprocity=0.2,
        seed=7,
    )
    workload = log_degree_workload(graph, read_write_ratio=E12_READ_WRITE_RATIO)
    rows = []
    runs = {}
    for mode, lazy in (("eager", False), ("lazy", True)):
        started = time.perf_counter()
        scheduler = ChitchatScheduler(graph, workload, backend="csr", lazy=lazy)
        schedule = scheduler.run()
        elapsed = time.perf_counter() - started
        runs[mode] = (schedule, scheduler.stats, elapsed)
        rows.append(
            {
                "mode": mode,
                "nodes": n,
                "edges": graph.num_edges,
                "oracle_calls": scheduler.stats.oracle_calls,
                "oracle_early_exits": scheduler.stats.oracle_early_exits,
                "oracle_calls_saved": scheduler.stats.oracle_calls_saved,
                "hubs_pruned": scheduler.stats.hubs_pruned,
                "cost": round(scheduler.stats.final_cost, 1),
                "seconds": round(elapsed, 2),
            }
        )
    eager_schedule, eager_stats, eager_secs = runs["eager"]
    lazy_schedule, lazy_stats, lazy_secs = runs["lazy"]
    return {
        "nodes": n,
        "rows": rows,
        "equal": _schedules_equal(eager_schedule, lazy_schedule),
        "call_ratio": eager_stats.oracle_calls / max(1, lazy_stats.oracle_calls),
        "wall_ratio": eager_secs / max(1e-9, lazy_secs),
    }


def e13_exact_vs_peel(scale: float) -> dict:
    """E13 — peel vs exact (parametric max-flow) oracle, lazy heap on both.

    Runs lazy CHITCHAT on the CSR backend with both densest-subgraph
    oracles.  Headlines: ``reeval_ratio`` (peel full evaluations / exact
    full evaluations — the exact optimum's monotonicity lets the lazy
    heap retain champions and park dirty hubs at near-true keys, so the
    flow oracle re-evaluates less) and ``cost_ratio`` (peel cost / exact
    cost, ≥ 1 on the n≥3000 acceptance instance; smaller sizes can flip
    it marginally either way).
    """
    n = max(600, int(E13_BASE_NODES * scale))
    graph = social_copying_graph(
        num_nodes=n,
        out_degree=E13_OUT_DEGREE,
        copy_fraction=0.7,
        reciprocity=0.2,
        seed=7,
    )
    workload = log_degree_workload(graph, read_write_ratio=E13_READ_WRITE_RATIO)
    rows = []
    runs = {}
    for oracle in ("peel", "exact"):
        started = time.perf_counter()
        scheduler = ChitchatScheduler(
            graph, workload, backend="csr", lazy=True, oracle=oracle
        )
        schedule = scheduler.run()
        elapsed = time.perf_counter() - started
        runs[oracle] = (schedule, scheduler.stats, elapsed)
        rows.append(
            {
                "oracle": oracle,
                "nodes": n,
                "edges": graph.num_edges,
                "oracle_calls": scheduler.stats.oracle_calls,
                "exact_calls": scheduler.stats.exact_oracle_calls,
                "early_exits": scheduler.stats.oracle_early_exits,
                "retained": scheduler.stats.champions_retained,
                "saved": scheduler.stats.oracle_calls_saved,
                "cost": round(scheduler.stats.final_cost, 1),
                "seconds": round(elapsed, 2),
            }
        )
    peel_stats, exact_stats = runs["peel"][1], runs["exact"][1]
    return {
        "nodes": n,
        "rows": rows,
        "reeval_ratio": peel_stats.oracle_calls
        / max(1, exact_stats.oracle_calls),
        "cost_ratio": peel_stats.final_cost / max(1e-9, exact_stats.final_cost),
        "cost_delta": peel_stats.final_cost - exact_stats.final_cost,
    }


def e10_scaling(scale: float) -> dict:
    """E10 — oracle-call volume of the scaling techniques (compact form)."""
    sample, workload = e10_twitter_sample(scale=min(scale, 0.3))
    ff_cost = schedule_cost(hybrid_schedule(sample, workload), workload)
    rows = []

    for name, lazy in (("ChitChat (eager)", False), ("ChitChat (lazy)", True)):
        started = time.perf_counter()
        scheduler = ChitchatScheduler(sample, workload, backend="dict", lazy=lazy)
        schedule = scheduler.run()
        rows.append(
            {
                "algorithm": name,
                "vs_hybrid": round(ff_cost / schedule_cost(schedule, workload), 3),
                "oracle_calls": scheduler.stats.oracle_calls,
                "seconds": round(time.perf_counter() - started, 2),
            }
        )

    started = time.perf_counter()
    bc_schedule, bc_stats = batched_chitchat_with_stats(sample, workload)
    rows.append(
        {
            "algorithm": "BatchedChitChat",
            "vs_hybrid": round(ff_cost / schedule_cost(bc_schedule, workload), 3),
            "oracle_calls": bc_stats.oracle_calls,
            "seconds": round(time.perf_counter() - started, 2),
        }
    )

    started = time.perf_counter()
    pn_schedule = parallel_nosy_schedule(sample, workload, max_iterations=10)
    rows.append(
        {
            "algorithm": "ParallelNosy",
            "vs_hybrid": round(ff_cost / schedule_cost(pn_schedule, workload), 3),
            "oracle_calls": 0,
            "seconds": round(time.perf_counter() - started, 2),
        }
    )
    return {"nodes": sample.num_nodes, "rows": rows}


def e11_backends(scale: float) -> dict:
    """E11 — per-backend wall clock of sequential CHITCHAT (compact form)."""
    n = max(600, int(12_000 * scale))
    graph = social_copying_graph(
        num_nodes=n, out_degree=10, copy_fraction=0.7, reciprocity=0.2, seed=7
    )
    workload = log_degree_workload(graph)
    rows = []
    schedules = {}
    for backend in ("dict", "csr"):
        resolved = as_graph_view(graph, backend)
        started = time.perf_counter()
        scheduler = ChitchatScheduler(resolved, workload, backend=backend)
        schedules[backend] = scheduler.run()
        rows.append(
            {
                "backend": backend,
                "nodes": n,
                "oracle_calls": scheduler.stats.oracle_calls,
                "seconds": round(time.perf_counter() - started, 2),
            }
        )
    return {
        "nodes": n,
        "rows": rows,
        "equal": _schedules_equal(schedules["dict"], schedules["csr"]),
    }


#: E14 size tiers (hub-graph element counts): the top tier is where the
#: wave solver beats the loop outright; the bottom tiers are where
#: ``method="auto"`` falls back to the (λ-seeded) loop.
E14_BUCKETS = ((1024, None), (256, 1024), (64, 256), (0, 64))


def e14_flow_kernel(scale: float) -> dict:
    """E14 — vectorized flow kernel vs the PR 3 loop on E13 hub-graphs.

    Solves every eligible hub-graph of the E13 instance (initial
    weights, everything uncovered) exactly, under two kernel
    configurations:

    * ``pr3`` — the loop discharge with the full-graph Dinkelbach seed,
      byte-for-byte the kernel PR 3 shipped;
    * ``new`` — the current default: single-vertex-seeded Dinkelbach on
      ``method="auto"`` (wave discharge at or above
      :data:`~repro.flow.maxflow.WAVE_AUTO_MIN_ARCS` forward arcs, loop
      below).

    Rows bucket the hubs by element count and also time the factor-2
    peel on the same hub-graphs — the crossover data behind
    :data:`~repro.flow.maxflow.WAVE_AUTO_MIN_ARCS` and the raised
    :data:`~repro.flow.exact_oracle.EXACT_AUTO_MAX_ELEMENTS`.
    Headlines: ``kernel_speedup`` (total pr3 seconds / total new
    seconds, the ISSUE 4 acceptance metric) and ``exact_vs_peel`` (total
    new seconds / total peel seconds); ``equal`` certifies that both
    kernel configurations returned identical selections on every hub.
    """
    from repro.core.densest import densest_subgraph
    from repro.core.hubgraph import build_hub_graph
    from repro.core.schedule import RequestSchedule
    from repro.flow.parametric import ParametricDensest

    n = max(600, int(E13_BASE_NODES * scale))
    graph = social_copying_graph(
        num_nodes=n,
        out_degree=E13_OUT_DEGREE,
        copy_fraction=0.7,
        reciprocity=0.2,
        seed=7,
    )
    workload = log_degree_workload(graph, read_write_ratio=E13_READ_WRITE_RATIO)
    view = as_graph_view(graph, "dict")
    schedule = RequestSchedule()

    hubs = []
    for node in view.nodes():
        if view.in_degree(node) > 0 and view.out_degree(node) > 0:
            hub_graph = build_hub_graph(view, node, None)
            elements = hub_graph.num_vertices + len(hub_graph.cross_edges)
            hubs.append((elements, node, hub_graph))
    hubs.sort(key=lambda item: (-item[0], item[1]))

    def kernel_seconds(hub_graph, method, seed_lambda):
        peel = hub_graph.peel_index()
        problem = ParametricDensest(
            peel.endpoint_idx,
            len(peel.verts),
            method=method,
            seed_lambda=seed_lambda,
        )
        weight = [
            hub_graph.vertex_weight(peel.verts[i], workload, schedule)
            for i in range(len(peel.verts))
        ]
        started = time.perf_counter()
        selection = problem.solve(weight)
        return time.perf_counter() - started, selection

    def peel_seconds(hub_graph):
        uncovered = {edge for edge, _ in hub_graph.element_index()}
        started = time.perf_counter()
        densest_subgraph(hub_graph, workload, schedule, uncovered)
        return time.perf_counter() - started

    totals = {
        (lo, hi): {"hubs": 0, "elements": 0, "pr3": 0.0, "new": 0.0, "peel": 0.0}
        for lo, hi in E14_BUCKETS
    }
    equal = True
    for elements, _node, hub_graph in hubs:
        bucket = next(
            (lo, hi)
            for lo, hi in E14_BUCKETS
            if elements >= lo and (hi is None or elements < hi)
        )
        pr3_s, pr3_sel = kernel_seconds(hub_graph, "loop", seed_lambda=False)
        new_s, new_sel = kernel_seconds(hub_graph, "auto", seed_lambda=True)
        if (
            pr3_sel is not None
            and new_sel is not None
            and (
                pr3_sel.selected != new_sel.selected
                or pr3_sel.covered != new_sel.covered
            )
        ):
            equal = False
        cell = totals[bucket]
        cell["hubs"] += 1
        cell["elements"] += elements
        cell["pr3"] += pr3_s
        cell["new"] += new_s
        cell["peel"] += peel_seconds(hub_graph)

    rows = []
    for (lo, hi), cell in totals.items():
        if not cell["hubs"]:
            continue
        rows.append(
            {
                "elements": f"[{lo},{'inf' if hi is None else hi})",
                "hubs": cell["hubs"],
                "mean_elements": cell["elements"] // cell["hubs"],
                "pr3_loop_ms": round(cell["pr3"] * 1000, 1),
                "new_kernel_ms": round(cell["new"] * 1000, 1),
                "peel_ms": round(cell["peel"] * 1000, 1),
                "speedup": round(cell["pr3"] / max(cell["new"], 1e-9), 2),
            }
        )
    pr3_total = sum(cell["pr3"] for cell in totals.values())
    new_total = sum(cell["new"] for cell in totals.values())
    peel_total = sum(cell["peel"] for cell in totals.values())
    return {
        "nodes": n,
        "hubs": sum(cell["hubs"] for cell in totals.values()),
        "rows": rows,
        "equal": equal,
        "kernel_speedup": pr3_total / max(new_total, 1e-9),
        "exact_vs_peel": new_total / max(peel_total, 1e-9),
    }


def e15_warm_oracle(scale: float) -> dict:
    """E15 — cross-call warm starts of the exact oracle (ISSUE 5 + 6).

    Runs lazy exact-oracle CHITCHAT on the E13 instance (CSR backend)
    three times: ``cold`` (``warm=False`` — every oracle call resets its
    hub's flow network and rebuilds the preflow from zero, the PR 4
    behavior), ``warm-fixed`` (``warm=True`` with the warm-aware
    global-relabel cadence disabled — the original fixed interval), and
    ``warm`` (``warm=True`` with
    :data:`~repro.flow.maxflow.ADAPTIVE_WARM_RELABEL` on: the relabel
    interval stretches by how intact the resumed preflow is).  All
    three run with ``batch_k=0`` so the rows measure the sequential
    kernel's cadence, not the arena's (E18 owns the batched tier).

    Headlines: ``pass_ratio`` — cold flow-solver work units over
    (adaptive) warm, the ISSUE 5 acceptance metric — plus
    ``cadence_pass_ratio`` (fixed-cadence warm passes / adaptive warm
    passes, the ISSUE 6 before/after), ``wall_ratio``, and ``equal``
    certifying all three schedules are byte-identical.
    """
    from repro.flow import maxflow

    n = max(600, int(E13_BASE_NODES * scale))
    graph = social_copying_graph(
        num_nodes=n,
        out_degree=E13_OUT_DEGREE,
        copy_fraction=0.7,
        reciprocity=0.2,
        seed=7,
    )
    workload = log_degree_workload(graph, read_write_ratio=E13_READ_WRITE_RATIO)
    rows = []
    runs = {}
    configs = (
        ("cold", False, True),
        ("warm-fixed", True, False),
        ("warm", True, True),
    )
    for mode, warm, adaptive in configs:
        saved = maxflow.ADAPTIVE_WARM_RELABEL
        maxflow.ADAPTIVE_WARM_RELABEL = adaptive
        try:
            started = time.perf_counter()
            scheduler = ChitchatScheduler(
                graph,
                workload,
                backend="csr",
                lazy=True,
                oracle="exact",
                warm=warm,
                batch_k=0,
            )
            schedule = scheduler.run()
            elapsed = time.perf_counter() - started
        finally:
            maxflow.ADAPTIVE_WARM_RELABEL = saved
        runs[mode] = (schedule, scheduler.stats, elapsed)
        rows.append(
            {
                "mode": mode,
                "nodes": n,
                "edges": graph.num_edges,
                "oracle_calls": scheduler.stats.oracle_calls,
                "flow_passes": scheduler.stats.flow_passes,
                "warm_solves": scheduler.stats.warm_solves,
                "preflow_repairs": scheduler.stats.preflow_repairs,
                "cost": round(scheduler.stats.final_cost, 1),
                "seconds": round(elapsed, 2),
            }
        )
    cold_schedule, cold_stats, cold_secs = runs["cold"]
    fixed_schedule, fixed_stats, _fixed_secs = runs["warm-fixed"]
    warm_schedule, warm_stats, warm_secs = runs["warm"]
    return {
        "nodes": n,
        "rows": rows,
        "equal": _schedules_equal(cold_schedule, warm_schedule)
        and _schedules_equal(fixed_schedule, warm_schedule),
        "pass_ratio": cold_stats.flow_passes / max(1, warm_stats.flow_passes),
        "cadence_pass_ratio": fixed_stats.flow_passes
        / max(1, warm_stats.flow_passes),
        "wall_ratio": cold_secs / max(1e-9, warm_secs),
        "warm_solves": warm_stats.warm_solves,
        "preflow_repairs": warm_stats.preflow_repairs,
    }


def e18_batched_solve(scale: float) -> dict:
    """E18 — the batched block-diagonal multi-hub flow tier (ISSUE 6).

    Runs lazy exact-oracle CHITCHAT on the E13 instance (CSR backend)
    twice: ``sequential`` (``batch_k=0`` — every dirty heap-top hub gets
    its own per-hub Dinkelbach solve) and ``batched`` (the default
    ``batch_k`` — up to :data:`~repro.core.tolerances.BATCH_K` dirty
    heap-top hubs are popped together and their flow problems solved in
    one :class:`~repro.flow.batched_solve.BatchedNetwork` wave pass per
    Dinkelbach round).

    Headlines: ``invocation_ratio`` — sequential kernel invocations over
    batched ones (one arena solve counts once however many blocks it
    discharges; the acceptance floor is 3×, reached at the default
    ``BATCH_K=16``) — ``wall_ratio`` (informative: the pure-numpy arena
    runs at wall parity because an arena pass costs about as much as the
    per-block passes it replaces and non-kernel stages dominate the run;
    the pytest gate only enforces a non-regression floor, see
    ``benchmarks/test_bench_batched_solve.py``), and ``equal``
    certifying the schedules are byte-identical (the batch tier is a
    pure performance change at ``epsilon=0``).  Rows record the arena's
    profile: batched solves, blocks per batch, and the
    freeze/discharge/relabel time split.
    """
    n = max(600, int(E13_BASE_NODES * scale))
    graph = social_copying_graph(
        num_nodes=n,
        out_degree=E13_OUT_DEGREE,
        copy_fraction=0.7,
        reciprocity=0.2,
        seed=7,
    )
    workload = log_degree_workload(graph, read_write_ratio=E13_READ_WRITE_RATIO)
    rows = []
    runs = {}
    for mode, batch_k in (("sequential", 0), ("batched", None)):
        started = time.perf_counter()
        scheduler = ChitchatScheduler(
            graph,
            workload,
            backend="csr",
            lazy=True,
            oracle="exact",
            batch_k=batch_k,
        )
        schedule = scheduler.run()
        elapsed = time.perf_counter() - started
        runs[mode] = (schedule, scheduler.stats, elapsed)
        rows.append(
            {
                "mode": mode,
                "nodes": n,
                "edges": graph.num_edges,
                "oracle_calls": scheduler.stats.oracle_calls,
                "kernel_invocations": scheduler.stats.kernel_invocations,
                "batched_solves": scheduler.stats.batched_solves,
                "blocks_per_batch": round(scheduler.stats.blocks_per_batch, 2),
                "freeze_s": round(scheduler.stats.batch_freeze_seconds, 3),
                "discharge_s": round(scheduler.stats.batch_discharge_seconds, 3),
                "relabel_s": round(scheduler.stats.batch_relabel_seconds, 3),
                "cost": round(scheduler.stats.final_cost, 1),
                "seconds": round(elapsed, 2),
            }
        )
    seq_schedule, seq_stats, seq_secs = runs["sequential"]
    bat_schedule, bat_stats, bat_secs = runs["batched"]
    return {
        "nodes": n,
        "rows": rows,
        "equal": _schedules_equal(seq_schedule, bat_schedule),
        "invocation_ratio": seq_stats.kernel_invocations
        / max(1, bat_stats.kernel_invocations),
        "wall_ratio": seq_secs / max(1e-9, bat_secs),
        "batched_solves": bat_stats.batched_solves,
        "blocks_per_batch": bat_stats.blocks_per_batch,
    }


def e19_jit_kernel(scale: float) -> dict:
    """E19 — the compiled (Numba) flow-kernel tier vs wave (ISSUE 7).

    Runs lazy exact-oracle CHITCHAT on the E13 instance (CSR backend,
    default ``batch_k``) three times, forcing each flow kernel in turn:
    ``loop`` (pure-Python reference; its arena tier still runs wave),
    ``wave`` (vectorized numpy), and ``jit`` (the Numba-compiled fused
    discharge loops — both the per-hub kernel and the multi-block arena
    kernel).  :func:`~repro.flow.jit_kernel.ensure_compiled` is called
    up front so the one-off compilation is excluded from every wall
    below; it is reported separately as ``jit_compile_s``.

    Headlines: ``jit_wall_speedup`` — wave solve-tier wall (sequential
    ``flow_solve_seconds`` + arena discharge + relabel) over the jit
    run's (the ISSUE 7 acceptance metric, floor 1.5× at n>=3000) — and
    ``equal``, certifying byte-identical schedules across all three
    kernels (the compiled tier is a pure performance change).

    Without numba the experiment cannot run; the returned document
    carries a ``skipped`` reason instead of rows, and the pytest gate
    skips (every other suite must pass without the ``[jit]`` extra).
    """
    from repro.flow.jit_kernel import (
        compile_seconds,
        ensure_compiled,
        jit_available,
        missing_reason,
    )

    if not jit_available():
        return {"nodes": 0, "rows": [], "equal": True, "skipped": missing_reason()}
    ensure_compiled()  # one-off kernel compilation, excluded from walls
    n = max(600, int(E13_BASE_NODES * scale))
    graph = social_copying_graph(
        num_nodes=n,
        out_degree=E13_OUT_DEGREE,
        copy_fraction=0.7,
        reciprocity=0.2,
        seed=7,
    )
    workload = log_degree_workload(graph, read_write_ratio=E13_READ_WRITE_RATIO)
    rows = []
    runs = {}
    for method in ("loop", "wave", "jit"):
        started = time.perf_counter()
        scheduler = ChitchatScheduler(
            graph,
            workload,
            backend="csr",
            lazy=True,
            oracle="exact",
            method=method,
        )
        schedule = scheduler.run()
        elapsed = time.perf_counter() - started
        stats = scheduler.stats
        solve_wall = (
            stats.flow_solve_seconds
            + stats.batch_discharge_seconds
            + stats.batch_relabel_seconds
        )
        runs[method] = (schedule, solve_wall)
        rows.append(
            {
                "method": method,
                "nodes": n,
                "edges": graph.num_edges,
                "kernel_invocations": stats.kernel_invocations,
                "solve_wall_s": round(solve_wall, 3),
                "sequential_s": round(stats.flow_solve_seconds, 3),
                "discharge_s": round(stats.batch_discharge_seconds, 3),
                "relabel_s": round(stats.batch_relabel_seconds, 3),
                "cost": round(stats.final_cost, 1),
                "seconds": round(elapsed, 2),
            }
        )
    equal = _schedules_equal(runs["loop"][0], runs["wave"][0]) and _schedules_equal(
        runs["wave"][0], runs["jit"][0]
    )
    return {
        "nodes": n,
        "rows": rows,
        "equal": equal,
        "jit_wall_speedup": runs["wave"][1] / max(runs["jit"][1], 1e-9),
        "jit_compile_s": round(compile_seconds(), 3),
    }


def e20_obs_overhead(scale: float) -> dict:
    """E20 — span-tracer overhead and Chrome-trace validity (ISSUE 8).

    Runs lazy exact-oracle CHITCHAT on the E13 instance twice with the
    global tracer disabled and twice with it enabled, taking the
    min-of-2 wall on each side (the first disabled run doubles as
    warmup).  Headlines:

    * ``enabled_overhead`` — enabled wall / disabled wall − 1, the cost
      of actually recording every span (acceptance <= 0.15 at n>=3000);
    * ``disabled_overhead`` — a *projection*, not a wall diff: the
      per-call cost of a disabled ``tracer.span()`` (microbenched over
      200k calls) times the number of events one traced run records,
      divided by the disabled wall.  Shared CI hardware cannot resolve
      a <=2% wall delta by direct timing, while the projection is
      near-deterministic and measures exactly the disabled hot-path
      work (one attribute check, no allocation) the acceptance bounds;
    * ``equal`` — all four schedules byte-identical (tracing is pure
      observation);
    * ``trace_valid`` / ``trace_problems`` — the Chrome-trace document
      built from the enabled runs passes
      :func:`repro.obs.validate_chrome_trace` with ``scheduler``,
      ``oracle`` and ``flow`` span categories all present.

    The collector saves and restores the global tracer's enabled flag,
    so it composes with an outer ``run_benchmarks.py --trace`` session
    (``start()``/``stop()`` never clear recorded events).
    """
    n = max(600, int(E13_BASE_NODES * scale))
    graph = social_copying_graph(
        num_nodes=n,
        out_degree=E13_OUT_DEGREE,
        copy_fraction=0.7,
        reciprocity=0.2,
        seed=7,
    )
    workload = log_degree_workload(graph, read_write_ratio=E13_READ_WRITE_RATIO)
    tracer = get_tracer()
    prior_enabled = tracer.enabled

    def one_run() -> tuple:
        started = time.perf_counter()
        scheduler = ChitchatScheduler(
            graph, workload, backend="csr", lazy=True, oracle="exact"
        )
        schedule = scheduler.run()
        return schedule, scheduler.stats, time.perf_counter() - started

    rows = []
    schedules = []
    walls: dict[str, list[float]] = {"disabled": [], "enabled": []}
    span_count = 0
    try:
        for mode in ("disabled", "enabled"):
            tracer.enabled = mode == "enabled"
            for attempt in (1, 2):
                before = len(tracer.events())
                schedule, stats, elapsed = one_run()
                if mode == "enabled" and attempt == 1:
                    span_count = len(tracer.events()) - before
                schedules.append(schedule)
                walls[mode].append(elapsed)
                rows.append(
                    {
                        "mode": mode,
                        "run": attempt,
                        "nodes": n,
                        "edges": graph.num_edges,
                        "oracle_calls": stats.oracle_calls,
                        "cost": round(stats.final_cost, 1),
                        "seconds": round(elapsed, 2),
                    }
                )
        document = chrome_trace(tracer)
        problems = validate_chrome_trace(
            document, require_categories=("scheduler", "oracle", "flow")
        )
        # microbench the disabled hot path: one attribute check, shared
        # null span, no allocation
        tracer.enabled = False
        calls = 200_000
        started = time.perf_counter()
        for _ in range(calls):
            with tracer.span("e20.null"):
                pass
        null_span_s = (time.perf_counter() - started) / calls
    finally:
        tracer.enabled = prior_enabled

    disabled_wall = min(walls["disabled"])
    enabled_wall = min(walls["enabled"])
    equal = all(_schedules_equal(schedules[0], other) for other in schedules[1:])
    return {
        "nodes": n,
        "rows": rows,
        "equal": equal,
        "enabled_overhead": enabled_wall / max(disabled_wall, 1e-9) - 1.0,
        "disabled_overhead": null_span_s * span_count / max(disabled_wall, 1e-9),
        "span_count": span_count,
        "null_span_ns": round(null_span_s * 1e9, 1),
        "trace_valid": not problems,
        "trace_problems": problems,
    }


def e16_churn(scale: float) -> dict:
    """E16 — delta scheduling under churn (ISSUE 9).

    Runs CHITCHAT once from scratch, wraps the completed run in a
    :class:`~repro.core.delta.DeltaScheduler`, and drives a seeded
    LDBC-style churn stream through it with per-event repair.  At
    :data:`E16_CHECKPOINTS` evenly spaced points the maintained cost is
    compared against a fresh from-scratch CHITCHAT run on a snapshot of
    the churned instance (graph copy + *frozen* workload copy — the
    delta's own workload is a live mutable view and must never be handed
    to another scheduler).

    Headlines:

    * ``refresh_ratio`` — the from-scratch run's oracle calls over the
      delta's *mean per-event* hub refreshes: how much oracle work one
      event costs relative to re-running the optimizer.  The acceptance
      bar is >=10x; the measured value at n=3000 is in the thousands —
      the locality certificate (only endpoint/wedge hubs of re-opened
      elements are candidates) is what's being priced.
    * ``max_cost_ratio`` — worst checkpoint ratio of maintained cost to
      the fresh run's; must stay within
      ``1 + repro.core.tolerances.DELTA_QUALITY_EPSILON``.
    * ``equal`` — the final maintained schedule is feasible and its
      incrementally tracked cost matches the full rescan.
    """
    n = max(600, int(E16_BASE_NODES * scale))
    num_events = max(800, int(E16_BASE_EVENTS * scale))
    graph = social_copying_graph(
        num_nodes=n,
        out_degree=E16_OUT_DEGREE,
        copy_fraction=0.7,
        reciprocity=0.2,
        seed=16,
    )
    workload = log_degree_workload(graph, read_write_ratio=E16_READ_WRITE_RATIO)

    started = time.perf_counter()
    scratch = ChitchatScheduler(graph, workload, lazy=True)
    scratch.run()
    scratch_seconds = time.perf_counter() - started
    scratch_calls = scratch.stats.oracle_calls

    events = churn_stream(graph, workload, num_events, seed=16)
    delta = DeltaScheduler.from_scheduler(scratch)
    checkpoint_every = max(1, num_events // E16_CHECKPOINTS)
    rows = []
    cost_ratios = []
    delta_seconds = 0.0
    for index, event in enumerate(events, start=1):
        started = time.perf_counter()
        delta.apply(event)
        delta.repair()
        delta_seconds += time.perf_counter() - started
        if index % checkpoint_every == 0 or index == num_events:
            snapshot_graph = delta.graph.copy()
            snapshot_workload = Workload(
                production=dict(delta.workload.production),
                consumption=dict(delta.workload.consumption),
            )
            started = time.perf_counter()
            fresh = ChitchatScheduler(snapshot_graph, snapshot_workload, lazy=True)
            fresh_schedule = fresh.run()
            fresh_seconds = time.perf_counter() - started
            fresh_cost = schedule_cost(fresh_schedule, snapshot_workload)
            ratio = delta.cost() / fresh_cost
            cost_ratios.append(ratio)
            rows.append(
                {
                    "events": index,
                    "nodes": n,
                    "edges": snapshot_graph.num_edges,
                    "refreshes": delta.stats.hub_refreshes,
                    "reopened": delta.stats.elements_reopened,
                    "covers_broken": delta.stats.covers_broken,
                    "delta_cost": round(delta.cost(), 1),
                    "fresh_cost": round(fresh_cost, 1),
                    "cost_ratio": round(ratio, 4),
                    "fresh_seconds": round(fresh_seconds, 2),
                }
            )
    per_event_refreshes = delta.stats.hub_refreshes / max(1, num_events)
    rescan = schedule_cost(delta.schedule, delta.workload)
    tracked_ok = abs(delta.cost() - rescan) <= 1e-6 * max(1.0, rescan)
    return {
        "nodes": n,
        "events": num_events,
        "rows": rows,
        "equal": delta.is_feasible() and tracked_ok,
        "refresh_ratio": scratch_calls / max(1e-9, per_event_refreshes),
        "per_event_refreshes": per_event_refreshes,
        "scratch_calls": scratch_calls,
        "cost_ratios": [round(r, 4) for r in cost_ratios],
        "max_cost_ratio": max(cost_ratios),
        "noop_events": delta.stats.noop_events,
        "scratch_seconds": round(scratch_seconds, 2),
        "delta_seconds": round(delta_seconds, 2),
        "per_event_ms": round(1000.0 * delta_seconds / max(1, num_events), 3),
    }


#: E21 instance family.  Sequential lazy CHITCHAT is ~O(n) at ~2.3 ms
#: per node on the LDBC-style family, so the instance size scales
#: *cubically* with the bench scale: scale 1.0 is the paper-scale
#: 10^6-node acceptance instance (~40 min sequential), the default
#: quick tier (0.25) lands at 15625 nodes (~1 min end to end), and the
#: CI tier (0.1) sits on the 4000-node floor.
E21_BASE_NODES = 1_000_000
E21_MIN_NODES = 4_000
E21_NUM_SHARDS = 4
E21_READ_WRITE_RATIO = 5.0


def e21_shard(scale: float) -> dict:
    """E21 — sharded multi-process CHITCHAT vs the sequential run (ISSUE 10).

    Generates an LDBC-style social graph plus log-degree workload,
    schedules it once with sequential lazy CHITCHAT and once with the
    :mod:`repro.shard` tier (:data:`E21_NUM_SHARDS` hash shards, spawn
    workers over shared-memory CSR slabs, boundary-hub reconciliation),
    and prices both.  Headlines:

    * ``shard_wall_speedup`` — sequential wall / sharded wall.  The
      acceptance criterion (>=3x) only binds on the 10^6-node instance
      with >=4 usable cores; the quick tier reports the value.
    * ``shard_cost_ratio`` — sharded cost / sequential cost, the
      *quality gap* from each worker seeing only ``~1/k`` of a
      cross-shard element's wedge hubs.  Reported as data (acceptance
      <=1.05), never assert-away-ed: the merged (pre-reconcile) and
      reconciled costs are both in the rows.
    * ``feasible`` — both schedules pass Theorem-1 coverage validation.
    """
    n = max(E21_MIN_NODES, int(E21_BASE_NODES * scale**3))
    cores = len(os.sched_getaffinity(0))
    workers = max(1, min(E21_NUM_SHARDS, cores))
    graph, workload = ldbc_instance(
        n, read_write_ratio=E21_READ_WRITE_RATIO, seed=21
    )
    csr = to_csr(graph)

    started = time.perf_counter()
    sequential = ChitchatScheduler(
        csr, workload, backend="csr", lazy=True, oracle="auto"
    )
    seq_schedule = sequential.run()
    seq_wall = time.perf_counter() - started
    seq_cost = schedule_cost(seq_schedule, workload)
    validate_schedule(csr, seq_schedule)

    execution = sharded_chitchat_schedule(
        csr,
        workload,
        num_shards=E21_NUM_SHARDS,
        num_workers=workers,
        seed=21,
        oracle="auto",
    )
    validate_schedule(csr, execution.schedule)
    recon = execution.reconciliation

    rows = [
        {
            "mode": "sequential",
            "nodes": n,
            "edges": csr.num_edges,
            "oracle_calls": sequential.stats.oracle_calls,
            "hubs": sequential.stats.hub_selections,
            "cost": round(seq_cost, 1),
            "seconds": round(seq_wall, 2),
        },
        {
            "mode": f"sharded x{E21_NUM_SHARDS}",
            "nodes": n,
            "edges": csr.num_edges,
            "oracle_calls": execution.oracle_calls,
            "hubs": sum(
                r["stats"]["hub_selections"] for r in execution.shard_reports
            ),
            "cost": round(execution.cost, 1),
            "merged_cost": round(execution.merged_cost, 1),
            "seconds": round(execution.wall_seconds, 2),
        },
    ]
    return {
        "nodes": n,
        "edges": csr.num_edges,
        "cores": cores,
        "workers": workers,
        "shards": E21_NUM_SHARDS,
        "rows": rows,
        "feasible": True,  # both validate_schedule calls above are strict
        "shard_wall_speedup": seq_wall / max(1e-9, execution.wall_seconds),
        "shard_cost_ratio": execution.cost / max(1e-9, seq_cost),
        "merged_cost_ratio": execution.merged_cost / max(1e-9, seq_cost),
        "cut_fraction": round(execution.plan.cut_fraction, 4),
        "boundary_hubs": recon["boundary_hubs"],
        "elements_recovered": recon["elements_recovered"],
        "cost_recovered": round(recon["cost_recovered"], 1),
        "budget_exhausted": recon["budget_exhausted"],
        "workers_wall_seconds": round(execution.workers_wall_seconds, 2),
    }


COLLECTORS = {
    "E10": e10_scaling,
    "E11": e11_backends,
    "E12": e12_lazy_vs_eager,
    "E13": e13_exact_vs_peel,
    "E14": e14_flow_kernel,
    "E15": e15_warm_oracle,
    "E16": e16_churn,
    "E18": e18_batched_solve,
    "E19": e19_jit_kernel,
    "E20": e20_obs_overhead,
    "E21": e21_shard,
}
