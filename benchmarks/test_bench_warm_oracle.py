"""E15 — cross-call warm starts of the exact densest-subgraph oracle.

ISSUE 5 made the :class:`~repro.flow.exact_oracle.ExactOracle` a warm
session: each per-hub flow problem repairs the preflow its previous call
left behind (capacity-decrease repair + deficit drain in
``repro.flow.maxflow``) and re-seeds the Dinkelbach density search from
the hub's previous optimum, instead of resetting the network on every
call.  This bench runs lazy exact-oracle CHITCHAT on the E13 instance
with the session warm and cold and compares total flow-solver work.

Acceptance (ISSUE 5, at the n>=3000 default-scale CSR instance): the
warm-started run performs >=1.3x fewer total discharge/wave passes than
cold per-call solves, with the two schedules byte-identical.
``benchmarks/run_benchmarks.py --json`` records the rows and headline
ratios in ``BENCH_chitchat.json``.
"""

from __future__ import annotations

from benchmarks.chitchat_perf import e15_warm_oracle
from benchmarks.conftest import run_once
from repro.analysis.reporting import format_table

#: Acceptance thresholds at the n>=3000 instance (ISSUE 5); smaller quick
#: tiers must still show a real reduction, with a slacker margin.
ACCEPTANCE_NODES = 3000
ACCEPTANCE_PASS_RATIO = 1.3
QUICK_TIER_PASS_RATIO = 1.15


def test_bench_warm_oracle_pass_reduction(benchmark, bench_scale):
    result = run_once(benchmark, lambda: e15_warm_oracle(bench_scale))
    print()
    print(
        format_table(
            result["rows"], title="E15: exact oracle, cold vs warm session"
        )
    )
    print(
        f"pass ratio {result['pass_ratio']:.2f}x "
        f"(wall {result['wall_ratio']:.2f}x), "
        f"{result['warm_solves']} warm solves, "
        f"{result['preflow_repairs']} preflow repairs"
    )
    # warm starts are a pure performance change: byte-identical schedules
    assert result["equal"]
    # the session must win by *resuming preflows*, not accidentally
    assert result["warm_solves"] > 0
    assert result["preflow_repairs"] > 0
    bar = (
        ACCEPTANCE_PASS_RATIO
        if result["nodes"] >= ACCEPTANCE_NODES
        else QUICK_TIER_PASS_RATIO
    )
    # pass counts are deterministic (no wall-clock noise): no retry needed
    assert result["pass_ratio"] >= bar
