"""E13 — exact (parametric max-flow) vs peel densest-subgraph oracle.

The ``repro.flow`` subsystem replaces the factor-2 peeling with Goldberg's
fractional-programming construction solved by warm-restarted push-relabel
(Dinkelbach density search).  Exact champions are true optima, which are
monotone non-decreasing under coverage events — so the lazy CHITCHAT heap
retains champions whose covered sets a selection did not touch, and parks
dirtied hubs at keys a float margin below their true value instead of a
factor-2 certificate.  Dirty hubs resurface only when genuinely
competitive: the "near-frontier re-peels" the ROADMAP called out vanish.

This bench runs lazy CHITCHAT with both oracles on the E13 copying-model
instance (CSR backend) and asserts the acceptance criteria at the n=3000
instance (default ``REPRO_BENCH_SCALE`` of 0.25):

* the exact schedule never prices above the peel's, and
* lazy+exact performs strictly fewer full oracle re-evaluations than
  lazy+peel, with the champion-retention machinery demonstrably firing.

Quick tiers below the acceptance size keep the re-evaluation assertions
but only tolerance-guard the cost: each greedy *step* picks an optimal
candidate, yet the greedy composition is path-dependent, so sub-0.1%
cost flips in either direction occur at some scales.

``benchmarks/run_benchmarks.py --json`` records ``reeval_ratio`` and
``cost_ratio`` in ``BENCH_chitchat.json`` so the oracle-call-ratio
trajectory is tracked across commits.
"""

from __future__ import annotations

from benchmarks.chitchat_perf import e13_exact_vs_peel
from benchmarks.conftest import run_once
from repro.analysis.reporting import format_table

#: Acceptance thresholds at the n>=3000 instance (ISSUE 3); smaller quick
#: runs only assert that exactness pays at all.
ACCEPTANCE_NODES = 3000
ACCEPTANCE_REEVAL_RATIO = 1.2


def test_bench_exact_vs_peel_oracle(benchmark, bench_scale):
    result = run_once(benchmark, lambda: e13_exact_vs_peel(bench_scale))
    print()
    print(format_table(result["rows"], title="E13: peel vs exact oracle (lazy, CSR)"))
    print(
        f"re-evaluation ratio {result['reeval_ratio']:.2f}x, "
        f"cost ratio {result['cost_ratio']:.5f}x "
        f"(exact cheaper by {result['cost_delta']:.2f})"
    )
    by_oracle = {row["oracle"]: row for row in result["rows"]}
    # every exact full evaluation goes through the flow oracle, none of
    # the peel's do
    assert by_oracle["exact"]["exact_calls"] == by_oracle["exact"]["oracle_calls"]
    assert by_oracle["peel"]["exact_calls"] == 0
    # lazy+exact re-evaluates strictly less than lazy+peel
    assert by_oracle["exact"]["oracle_calls"] < by_oracle["peel"]["oracle_calls"]
    assert by_oracle["exact"]["retained"] > 0
    if result["nodes"] >= ACCEPTANCE_NODES:
        assert result["reeval_ratio"] >= ACCEPTANCE_REEVAL_RATIO
        # the exact oracle must never price the acceptance schedule above
        # the peel's
        assert result["cost_ratio"] >= 1.0
    else:
        # quick tiers: greedy path-dependence can flip tiny cost deltas
        # either way below the acceptance size (the per-step candidates
        # are optimal, the greedy composition is not), so only guard
        # against a real quality regression
        assert result["cost_ratio"] >= 0.995
