"""E0 — dataset statistics table (paper section 4.1's dataset description).

Regenerates the node/edge/reciprocity/clustering table for the synthetic
twitter-like and flickr-like presets, checking the structural contrasts the
real crawls exhibit (twitter larger and less reciprocal than flickr).
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.analysis.reporting import format_table
from repro.experiments.datasets import dataset_table


def test_bench_dataset_table(benchmark, bench_scale):
    rows = run_once(benchmark, lambda: dataset_table(scale=bench_scale))
    print()
    print(format_table(rows, title="E0: dataset statistics"))
    by_name = {row["dataset"]: row for row in rows}
    assert by_name["twitter"]["nodes"] > by_name["flickr"]["nodes"]
    assert by_name["twitter"]["reciprocity"] < by_name["flickr"]["reciprocity"]
    assert all(row["avg_clustering"] > 0.02 for row in rows)
