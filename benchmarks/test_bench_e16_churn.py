"""E16 — delta scheduling under churn (ISSUE 9).

ISSUE 9 added ``repro.core.delta``: a :class:`DeltaScheduler` that wraps
a completed CHITCHAT run and repairs only the dirtied region on edge
insert/delete and rate-change events, instead of the
``IncrementalMaintainer``'s quality-decaying direct-service-only rule.
This bench drives a seeded LDBC-style churn stream through a wrapped run
with per-event repair and prices the two claims that make delta
maintenance worthwhile:

* **bounded re-work** — the oracle work one event costs is a vanishing
  fraction of a from-scratch run's (``refresh_ratio``: scratch oracle
  calls over mean per-event hub refreshes);
* **maintained quality** — at every checkpoint the maintained cost stays
  within ``(1 + DELTA_QUALITY_EPSILON)`` of a fresh CHITCHAT run on the
  churned snapshot.

Acceptance (ISSUE 9, at the n>=3000 / 10k-event default-scale instance):
``refresh_ratio >= 10`` — the measured value is in the thousands, the
bar guards the locality certificate itself — and every checkpoint cost
ratio within the quality epsilon.  Quick tiers keep the same quality bar
(widened for greedy path-dependence on small instances) with a slacker
re-work floor.
"""

from __future__ import annotations

from benchmarks.chitchat_perf import e16_churn
from benchmarks.conftest import run_once
from repro.analysis.reporting import format_table
from repro.core.tolerances import DELTA_QUALITY_EPSILON

#: Acceptance thresholds at the n>=3000 / 10k-event instance (ISSUE 9);
#: smaller quick tiers have proportionally fewer hubs for the scratch run
#: to refresh, so the re-work floor is slacker there.
ACCEPTANCE_NODES = 3000
ACCEPTANCE_REFRESH_RATIO = 10.0
QUICK_TIER_REFRESH_RATIO = 3.0


def test_bench_churn_delta_repair(benchmark, bench_scale):
    result = run_once(benchmark, lambda: e16_churn(bench_scale))
    print()
    print(
        format_table(
            result["rows"],
            title="E16: delta repair vs from-scratch under churn",
        )
    )
    print(
        f"refresh ratio {result['refresh_ratio']:.0f}x "
        f"({result['per_event_refreshes']:.2f} refreshes/event vs "
        f"{result['scratch_calls']} scratch calls), "
        f"worst checkpoint cost ratio {result['max_cost_ratio']:.4f}, "
        f"{result['per_event_ms']:.2f} ms/event"
    )
    # final schedule feasible + incremental cost tracking equals rescan
    assert result["equal"]
    acceptance = result["nodes"] >= ACCEPTANCE_NODES
    refresh_bar = (
        ACCEPTANCE_REFRESH_RATIO if acceptance else QUICK_TIER_REFRESH_RATIO
    )
    assert result["refresh_ratio"] >= refresh_bar
    # quality: every checkpoint within (1 + epsilon) of from-scratch; the
    # quick tier widens the bar — greedy path-dependence swings small
    # instances harder — but keeps the invariant's shape
    quality_bar = 1.0 + (
        DELTA_QUALITY_EPSILON if acceptance else 2.0 * DELTA_QUALITY_EPSILON
    )
    assert result["max_cost_ratio"] <= quality_bar
    assert all(ratio <= quality_bar for ratio in result["cost_ratios"])
