"""E4 / Figure 7 — partition-aware predicted throughput vs cluster size.

Paper: the analytic predictor reproduces the prototype's measured behavior
("the consistency ... is striking") and converges, as servers grow, to the
placement-free improvement ratio of Figure 4.
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.experiments.fig6_actual_throughput import Fig6Config
from repro.experiments.fig6_actual_throughput import run as run_fig6
from repro.experiments.fig7_predicted_throughput import Fig7Config, run


def test_bench_fig7(benchmark, bench_scale):
    config = Fig7Config(scale=bench_scale)
    result = run_once(benchmark, lambda: run(config))
    print()
    print(result.to_text())

    # normalized to 1.0 on one server by construction
    assert abs(result.parallelnosy[0] - 1.0) < 1e-9
    assert abs(result.feedingfrenzy[0] - 1.0) < 1e-9
    # curves decay monotonically with cluster size
    assert all(
        b <= a + 1e-9 for a, b in zip(result.parallelnosy, result.parallelnosy[1:])
    )
    # ratio converges to the placement-free asymptote
    assert abs(result.ratio[-1] - result.asymptotic_ratio) < 0.05


def test_bench_fig7_matches_fig6(benchmark, bench_scale):
    """The headline cross-check: predicted vs actual ratios agree."""
    counts = (1, 10, 100, 1000)

    def both():
        actual = run_fig6(
            Fig6Config(scale=bench_scale, num_requests=8000, server_counts=counts)
        )
        predicted = run(Fig7Config(scale=bench_scale, server_counts=counts))
        return actual, predicted

    actual, predicted = run_once(benchmark, both)
    print()
    for n, a, p in zip(counts, actual.ratio, predicted.ratio):
        print(f"servers={n:5d}  actual={a:.4f}  predicted={p:.4f}")
        assert abs(a - p) <= 0.12 * max(a, p)
