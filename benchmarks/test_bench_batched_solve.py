"""E18 — batched block-diagonal multi-hub flow solves (ISSUE 6).

ISSUE 6 added a batched tier to the lazy schedulers: up to
:data:`~repro.core.tolerances.BATCH_K` dirty heap-top hubs are popped
together and their Dinkelbach flow problems advance in lockstep on one
block-diagonal :class:`~repro.flow.batched_solve.BatchedNetwork`, so one
wave pass discharges every still-searching block.  This bench runs lazy
exact-oracle CHITCHAT on the E13 instance sequentially (``batch_k=0``)
and batched (default ``batch_k``) and compares kernel dispatch counts.

Acceptance (ISSUE 6, at the n>=3000 default-scale CSR instance): the
batched run issues >=3x fewer kernel invocations (one arena solve counts
once however many blocks it discharges), with the two schedules
byte-identical.  Wall-clock is gated as a *non-regression floor* only:
the pure-numpy arena runs at wall parity — an arena pass costs about as
much as the per-block passes it replaces, and the non-kernel stages
(pricing, hub-graph builds, heap maintenance) dominate the run — so the
dispatch-count reduction, not wall time, is the headline this tier
delivers (see docs/BENCHMARKS.md "E18" for the measured breakdown).
``benchmarks/run_benchmarks.py --json`` records the rows and headline
ratios in ``BENCH_chitchat.json``.
"""

from __future__ import annotations

from benchmarks.chitchat_perf import e18_batched_solve
from benchmarks.conftest import run_once
from repro.analysis.reporting import format_table

#: Acceptance thresholds at the n>=3000 instance (ISSUE 6); smaller quick
#: tiers gather shallower batches (fewer dirty hubs per state), so the
#: invocation floor is slacker there.
ACCEPTANCE_NODES = 3000
ACCEPTANCE_INVOCATION_RATIO = 3.0
QUICK_TIER_INVOCATION_RATIO = 2.0
#: Wall-clock non-regression floor (both tiers): the arena must not make
#: the run materially slower, but parity is the measured reality.
WALL_FLOOR = 0.5


def test_bench_batched_solve_invocation_reduction(benchmark, bench_scale):
    result = run_once(benchmark, lambda: e18_batched_solve(bench_scale))
    print()
    print(
        format_table(
            result["rows"], title="E18: multi-hub solves, sequential vs batched"
        )
    )
    print(
        f"invocation ratio {result['invocation_ratio']:.2f}x "
        f"(wall {result['wall_ratio']:.2f}x), "
        f"{result['batched_solves']} arena solves, "
        f"{result['blocks_per_batch']:.1f} blocks/batch"
    )
    # batching is a pure performance change: byte-identical schedules
    assert result["equal"]
    # the reduction must come from *real* arena dispatches, not fallbacks
    assert result["batched_solves"] > 0
    assert result["blocks_per_batch"] >= 2.0
    bar = (
        ACCEPTANCE_INVOCATION_RATIO
        if result["nodes"] >= ACCEPTANCE_NODES
        else QUICK_TIER_INVOCATION_RATIO
    )
    # dispatch counts are deterministic (no wall-clock noise): no retry
    assert result["invocation_ratio"] >= bar
    assert result["wall_ratio"] >= WALL_FLOOR
