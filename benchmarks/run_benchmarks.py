#!/usr/bin/env python
"""Machine-readable benchmark emitter for the CHITCHAT perf trajectory.

Runs the scheduling benchmarks (E10 scaling, E11 backends, E12 lazy vs
eager, E13 peel vs exact oracle, E14 flow-kernel speedup, E15 warm vs
cold exact-oracle session) through the
shared collectors in :mod:`benchmarks.chitchat_perf` and writes one JSON
document with wall-clock times and oracle-call counts, so successive
commits can be compared mechanically (CI uploads the file as an
artifact).  ``docs/BENCHMARKS.md`` documents every experiment and how to
read the emitted rows::

    PYTHONPATH=src python benchmarks/run_benchmarks.py --json BENCH_chitchat.json
    python benchmarks/run_benchmarks.py --scale 0.1 --experiments E12
    python benchmarks/run_benchmarks.py --baseline BENCH_chitchat.json
    python benchmarks/run_benchmarks.py --experiments E20 --trace TRACE_e20.json

``--trace PATH`` records obs spans across every collector and writes a
Chrome trace-event document; ``--profile`` prints the per-phase wall
table instead of (or in addition to) saving it.

``--scale`` defaults to the ``REPRO_BENCH_SCALE`` environment variable
(0.25 if unset), matching the pytest benchmark suite.

``--baseline PATH`` diffs the fresh run's headline ratios against a
previously committed document (the repo keeps one at
``benchmarks/BENCH_chitchat.json``) and prints per-headline deltas —
*warn-only*: a regression prints a ``WARNING`` line but never changes
the exit code, since wall-clock headlines are hardware-noisy and the
hard perf floors live in the pytest benchmark gates instead.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
from pathlib import Path

_ROOT = Path(__file__).resolve().parent.parent
for entry in (str(_ROOT), str(_ROOT / "src")):
    if entry not in sys.path:
        sys.path.insert(0, entry)

import numpy as np  # noqa: E402  (after sys.path setup)

from benchmarks.chitchat_perf import COLLECTORS  # noqa: E402
from repro.obs import (  # noqa: E402
    Stopwatch,
    get_tracer,
    profile_table,
    write_chrome_trace,
)

SCHEMA_VERSION = 1

#: Headline keys where bigger is better; a drop past
#: :data:`BASELINE_WARN_FRACTION` prints a warn-only regression line.
RATIO_HEADLINES = (
    "call_ratio",
    "wall_ratio",
    "pass_ratio",
    "cadence_pass_ratio",
    "invocation_ratio",
    "kernel_speedup",
    "jit_wall_speedup",
    "reeval_ratio",
    "refresh_ratio",
    "shard_wall_speedup",
)

#: Relative drop in a ratio headline that triggers a warning (wall-clock
#: ratios are noisy across hosts, so the margin is generous).
BASELINE_WARN_FRACTION = 0.2


def diff_baseline(document: dict, baseline: dict) -> list[str]:
    """Warn-only headline comparison of a fresh run against a baseline.

    Returns the report lines (also used by the tests); ``WARNING``-
    prefixed lines mark ratio headlines that dropped by more than
    :data:`BASELINE_WARN_FRACTION`, and ``equal`` flags that went from
    true to false (a correctness certificate disappearing is always
    worth a look, even warn-only).
    """
    lines: list[str] = []
    if baseline.get("scale") != document.get("scale"):
        lines.append(
            "note: baseline scale %s != run scale %s; deltas are indicative only"
            % (baseline.get("scale"), document.get("scale"))
        )
    old_experiments = baseline.get("experiments", {})
    for name, result in document.get("experiments", {}).items():
        old = old_experiments.get(name)
        if old is None:
            lines.append(f"{name}: no baseline entry (new experiment)")
            continue
        for key in RATIO_HEADLINES:
            if key not in result or key not in old:
                continue
            new_v, old_v = float(result[key]), float(old[key])
            delta = (new_v - old_v) / old_v if old_v else 0.0
            line = f"{name}.{key}: {old_v:.2f} -> {new_v:.2f} ({delta:+.1%})"
            if delta < -BASELINE_WARN_FRACTION:
                line = "WARNING " + line
            lines.append(line)
        if old.get("equal") is True and result.get("equal") is False:
            lines.append(f"WARNING {name}.equal: True -> False")
    return lines


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--json",
        type=Path,
        default=Path("BENCH_chitchat.json"),
        help="output path for the JSON document (default: %(default)s)",
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=float(os.environ.get("REPRO_BENCH_SCALE", "0.25")),
        help="dataset scale multiplier (default: env REPRO_BENCH_SCALE or 0.25)",
    )
    parser.add_argument(
        "--experiments",
        default=",".join(COLLECTORS),
        help="comma-separated subset of %s (default: all)" % ",".join(COLLECTORS),
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        help="committed BENCH JSON to diff headline ratios against "
        "(warn-only: regressions print WARNING lines, exit code stays 0)",
    )
    parser.add_argument(
        "--trace",
        type=Path,
        default=None,
        metavar="PATH",
        help="record spans across every collector and write a Chrome "
        "trace-event JSON (load in chrome://tracing or Perfetto)",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="print a per-phase wall/self-time table after the run",
    )
    args = parser.parse_args(argv)

    wanted = [name.strip().upper() for name in args.experiments.split(",") if name.strip()]
    unknown = [name for name in wanted if name not in COLLECTORS]
    if unknown:
        parser.error(f"unknown experiments {unknown}; options: {sorted(COLLECTORS)}")

    tracer = get_tracer()
    if args.trace is not None or args.profile:
        tracer.clear()
        tracer.start()

    experiments = {}
    for name in wanted:
        with Stopwatch() as watch:
            result = COLLECTORS[name](args.scale)
        result["total_seconds"] = round(watch.seconds, 2)
        experiments[name] = result
        print(f"{name}: done in {result['total_seconds']}s")

    if args.trace is not None or args.profile:
        tracer.stop()
        if args.trace is not None:
            write_chrome_trace(args.trace, tracer)
            print(f"wrote Chrome trace to {args.trace}")
        if args.profile:
            print(profile_table(tracer))

    document = {
        "schema": SCHEMA_VERSION,
        "scale": args.scale,
        "python": platform.python_version(),
        "numpy": np.__version__,
        "platform": platform.platform(),
        "experiments": experiments,
    }
    args.json.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    print(f"wrote {args.json}")
    if args.baseline is not None:
        if args.baseline.exists():
            baseline = json.loads(args.baseline.read_text())
            print(f"--- headline diff vs {args.baseline} (warn-only) ---")
            for line in diff_baseline(document, baseline):
                print(line)
        else:
            print(f"baseline {args.baseline} not found; skipping diff")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
