#!/usr/bin/env python
"""Machine-readable benchmark emitter for the CHITCHAT perf trajectory.

Runs the scheduling benchmarks (E10 scaling, E11 backends, E12 lazy vs
eager, E13 peel vs exact oracle, E14 flow-kernel speedup, E15 warm vs
cold exact-oracle session) through the
shared collectors in :mod:`benchmarks.chitchat_perf` and writes one JSON
document with wall-clock times and oracle-call counts, so successive
commits can be compared mechanically (CI uploads the file as an
artifact).  ``docs/BENCHMARKS.md`` documents every experiment and how to
read the emitted rows::

    PYTHONPATH=src python benchmarks/run_benchmarks.py --json BENCH_chitchat.json
    python benchmarks/run_benchmarks.py --scale 0.1 --experiments E12

``--scale`` defaults to the ``REPRO_BENCH_SCALE`` environment variable
(0.25 if unset), matching the pytest benchmark suite.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path

_ROOT = Path(__file__).resolve().parent.parent
for entry in (str(_ROOT), str(_ROOT / "src")):
    if entry not in sys.path:
        sys.path.insert(0, entry)

import numpy as np  # noqa: E402  (after sys.path setup)

from benchmarks.chitchat_perf import COLLECTORS  # noqa: E402

SCHEMA_VERSION = 1


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--json",
        type=Path,
        default=Path("BENCH_chitchat.json"),
        help="output path for the JSON document (default: %(default)s)",
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=float(os.environ.get("REPRO_BENCH_SCALE", "0.25")),
        help="dataset scale multiplier (default: env REPRO_BENCH_SCALE or 0.25)",
    )
    parser.add_argument(
        "--experiments",
        default=",".join(COLLECTORS),
        help="comma-separated subset of %s (default: all)" % ",".join(COLLECTORS),
    )
    args = parser.parse_args(argv)

    wanted = [name.strip().upper() for name in args.experiments.split(",") if name.strip()]
    unknown = [name for name in wanted if name not in COLLECTORS]
    if unknown:
        parser.error(f"unknown experiments {unknown}; options: {sorted(COLLECTORS)}")

    experiments = {}
    for name in wanted:
        started = time.perf_counter()
        result = COLLECTORS[name](args.scale)
        result["total_seconds"] = round(time.perf_counter() - started, 2)
        experiments[name] = result
        print(f"{name}: done in {result['total_seconds']}s")

    document = {
        "schema": SCHEMA_VERSION,
        "scale": args.scale,
        "python": platform.python_version(),
        "numpy": np.__version__,
        "platform": platform.platform(),
        "experiments": experiments,
    }
    args.json.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    print(f"wrote {args.json}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
