"""E19 — the compiled (Numba) flow-kernel tier (ISSUE 7).

ISSUE 7 added ``method="jit"``: Numba-compiled fused discharge loops for
both the per-hub :class:`~repro.flow.maxflow.FlowNetwork` solver and the
multi-block :class:`~repro.flow.batched_solve.BatchedNetwork` arena,
operating on the same grouped arrays as the wave kernel so warm starts
and capacity repairs carry over unchanged.  This bench runs lazy
exact-oracle CHITCHAT on the E13 instance under each kernel and compares
solve-tier wall clocks, with the one-off kernel compilation excluded
(``ensure_compiled`` runs before any timer; the compile cost is reported
separately).

Acceptance (ISSUE 7, at the n>=3000 default-scale CSR instance): the jit
run's solve-tier wall (sequential per-hub solves + arena discharge +
relabel) beats the wave run's by >=1.5x, with all three schedules
byte-identical — the compiled tier is a pure performance change.  The
whole suite must pass without numba: this module skips cleanly when the
``[jit]`` extra is absent (the collector then emits a ``skipped`` row
into ``BENCH_chitchat.json`` instead of measurements).
"""

from __future__ import annotations

import pytest

from benchmarks.chitchat_perf import e19_jit_kernel
from benchmarks.conftest import run_once
from repro.analysis.reporting import format_table
from repro.flow.jit_kernel import jit_available, missing_reason

#: Acceptance thresholds at the n>=3000 instance (ISSUE 7); smaller
#: quick tiers spend proportionally more wall in the non-kernel stages
#: (pricing, hub-graph builds), so the speedup floor is slacker there.
ACCEPTANCE_NODES = 3000
ACCEPTANCE_JIT_SPEEDUP = 1.5
QUICK_TIER_JIT_SPEEDUP = 1.1


@pytest.mark.skipif(
    not jit_available(), reason=f"[jit] extra absent: {missing_reason()}"
)
def test_bench_jit_kernel_speedup(benchmark, bench_scale):
    result = run_once(benchmark, lambda: e19_jit_kernel(bench_scale))
    print()
    print(
        format_table(
            result["rows"], title="E19: flow kernels, loop vs wave vs jit"
        )
    )
    print(
        f"jit wall speedup {result['jit_wall_speedup']:.2f}x over wave "
        f"(compile {result['jit_compile_s']:.2f}s, excluded)"
    )
    # the compiled tier is a pure performance change: identical schedules
    assert result["equal"]
    bar = (
        ACCEPTANCE_JIT_SPEEDUP
        if result["nodes"] >= ACCEPTANCE_NODES
        else QUICK_TIER_JIT_SPEEDUP
    )
    assert result["jit_wall_speedup"] >= bar
