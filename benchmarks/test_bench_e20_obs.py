"""E20 — span-tracer overhead and trace validity (ISSUE 8).

ISSUE 8 added :mod:`repro.obs`: span tracing, the unified metrics
registry, and Chrome-trace/JSON export across the scheduler–oracle–flow
stack.  The instrumentation rides the hot path (heap pops, oracle
solves, arena waves), so this bench gates its cost on the E13 instance:

* disabled, the tracer must be a near-no-op — the projected wall share
  of every disabled ``span()`` call (microbenched per-call cost × spans
  per run) stays under 2% at the n>=3000 acceptance instance;
* enabled, a fully traced run stays within 15% of the untraced wall;
* the emitted Chrome-trace document is structurally valid and its span
  tree covers the ``scheduler``, ``oracle`` and ``flow`` categories;
* tracing never changes results: all schedules are byte-identical.

Quick tiers (sub-second walls) get slacker relative bars, matching the
other benchmark gates.
"""

from __future__ import annotations

from benchmarks.chitchat_perf import e20_obs_overhead
from benchmarks.conftest import run_once
from repro.analysis.reporting import format_table

#: Acceptance thresholds at the n>=3000 instance (ISSUE 8); quick tiers
#: have sub-second walls where timer noise dominates, so the enabled
#: bar relaxes and the (near-deterministic) disabled projection less so.
ACCEPTANCE_NODES = 3000
ACCEPTANCE_ENABLED_OVERHEAD = 0.15
ACCEPTANCE_DISABLED_OVERHEAD = 0.02
QUICK_TIER_ENABLED_OVERHEAD = 0.40
QUICK_TIER_DISABLED_OVERHEAD = 0.04


def test_bench_obs_overhead(benchmark, bench_scale):
    result = run_once(benchmark, lambda: e20_obs_overhead(bench_scale))
    print()
    print(
        format_table(
            result["rows"], title="E20: tracer disabled vs enabled walls"
        )
    )
    print(
        f"enabled overhead {result['enabled_overhead']:+.1%}, disabled "
        f"projection {result['disabled_overhead']:.2%} "
        f"({result['span_count']} spans x {result['null_span_ns']}ns)"
    )
    # tracing is pure observation: identical schedules either way
    assert result["equal"]
    # the trace itself must be loadable and cover the whole stack
    assert result["trace_valid"], result["trace_problems"]
    acceptance = result["nodes"] >= ACCEPTANCE_NODES
    enabled_bar = (
        ACCEPTANCE_ENABLED_OVERHEAD if acceptance else QUICK_TIER_ENABLED_OVERHEAD
    )
    disabled_bar = (
        ACCEPTANCE_DISABLED_OVERHEAD
        if acceptance
        else QUICK_TIER_DISABLED_OVERHEAD
    )
    assert result["enabled_overhead"] <= enabled_bar
    assert result["disabled_overhead"] <= disabled_bar
