"""E11 — GraphView backend comparison at scale (the CSR fast path).

The scheduling stack runs on either adjacency backend through the
:class:`~repro.graph.view.GraphView` protocol; ``backend="auto"`` freezes
large dense-id graphs into :class:`~repro.graph.csr.CSRGraph` snapshots
whose flat-array kernels (vectorized hub-graph construction, bitmask
element filtering in the densest-subgraph oracle, batch singleton/hybrid
pricing) pay off as the instance grows.

Two instances, both scaled by ``REPRO_BENCH_SCALE`` (default 0.25):

* a 10^4-node copying-model graph for the bulk schedulers (hybrid and
  BATCHEDCHITCHAT) — backends must produce *identical* schedules, and the
  per-backend wall clock is reported;
* a ~3·10^3-node graph for sequential CHITCHAT, the oracle-heaviest
  algorithm and the headline beneficiary of the CSR kernels (every
  selection re-oracles every touched hub, so hub-graph element filtering
  dominates) — here the CSR/dict wall-clock ratio is asserted, with slack
  for CI timing noise.
"""

from __future__ import annotations

import time

from benchmarks.conftest import run_once
from repro.analysis.reporting import format_table
from repro.core.baselines import hybrid_schedule
from repro.core.batched import batched_chitchat_schedule
from repro.core.chitchat import chitchat_schedule
from repro.core.cost import schedule_cost
from repro.graph.generators import social_copying_graph
from repro.graph.view import as_graph_view
from repro.workload.rates import log_degree_workload

#: Node counts at bench scale 1.0 (default scale 0.25 gives 10^4 / 3·10^3).
BULK_BASE_NODES = 40_000
CHITCHAT_BASE_NODES = 12_000


def _compare_backends(name, graph, workload, run_algorithm, rows):
    """Run on both backends, assert identical schedules, record timings."""
    timings = {}
    schedules = {}
    for backend in ("dict", "csr"):
        resolved = as_graph_view(graph, backend)
        started = time.perf_counter()
        schedules[backend] = run_algorithm(resolved, backend)
        timings[backend] = time.perf_counter() - started
    assert schedules["dict"].push == schedules["csr"].push, name
    assert schedules["dict"].pull == schedules["csr"].pull, name
    assert schedules["dict"].hub_cover == schedules["csr"].hub_cover, name
    ratio = timings["csr"] / timings["dict"]
    rows.append(
        {
            "algorithm": name,
            "nodes": graph.num_nodes,
            "cost": round(schedule_cost(schedules["dict"], workload), 1),
            "dict s": round(timings["dict"], 2),
            "csr s": round(timings["csr"], 2),
            "csr/dict": round(ratio, 2),
        }
    )
    return ratio


def test_bench_graphview_backends(benchmark, bench_scale):
    bulk_graph = social_copying_graph(
        num_nodes=max(2_000, int(BULK_BASE_NODES * bench_scale)),
        out_degree=14,
        copy_fraction=0.7,
        reciprocity=0.2,
        seed=7,
    )
    bulk_workload = log_degree_workload(bulk_graph)
    cc_graph = social_copying_graph(
        num_nodes=max(600, int(CHITCHAT_BASE_NODES * bench_scale)),
        out_degree=10,
        copy_fraction=0.7,
        reciprocity=0.2,
        seed=7,
    )
    cc_workload = log_degree_workload(cc_graph)

    def work():
        rows = []
        _compare_backends(
            "hybrid (FF)",
            bulk_graph,
            bulk_workload,
            lambda g, b: hybrid_schedule(g, bulk_workload),
            rows,
        )
        _compare_backends(
            "BatchedChitChat (6 rounds)",
            bulk_graph,
            bulk_workload,
            lambda g, b: batched_chitchat_schedule(
                g, bulk_workload, max_rounds=6, backend=b
            ),
            rows,
        )
        chitchat_ratio = _compare_backends(
            "ChitChat (sequential)",
            cc_graph,
            cc_workload,
            lambda g, b: chitchat_schedule(g, cc_workload, backend=b),
            rows,
        )
        return rows, chitchat_ratio

    rows, chitchat_ratio = run_once(benchmark, work)
    print()
    print(format_table(rows, title="E11: GraphView backend comparison"))
    # Sequential CHITCHAT is the oracle-heaviest path and must benefit from
    # the CSR kernels (observed ~0.8); the bound leaves room for CI noise.
    assert chitchat_ratio < 1.05
