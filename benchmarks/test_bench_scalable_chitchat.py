"""E10 — the paper's future-work direction: scaling CHITCHAT.

Section 4.4 concludes that the CHITCHAT/PARALLELNOSY gap "suggests
interesting future work on the design of techniques to scale the CHITCHAT
algorithm".  This bench evaluates the two scaling techniques in the repo
against the published algorithms on a sample graph: BATCHEDCHITCHAT
(``repro.core.batched``, bulk rounds) and the lazy dirty-hub CHITCHAT
(``repro.core.chitchat``, identical schedules with lazily re-oracled
hubs), reporting schedule quality (improvement over FF), oracle-call
volume (the scalability currency), and wall-clock time against the eager
reference.
"""

from __future__ import annotations

import time

from benchmarks.conftest import run_once
from repro.analysis.reporting import format_table
from repro.core.baselines import hybrid_schedule
from repro.core.batched import batched_chitchat_with_stats
from repro.core.chitchat import ChitchatScheduler
from repro.core.cost import schedule_cost
from repro.core.parallelnosy import parallel_nosy_schedule
from repro.experiments.datasets import load_dataset
from repro.graph.sampling import breadth_first_sample
from repro.workload.rates import log_degree_workload


def test_bench_scalable_chitchat(benchmark, bench_scale):
    dataset = load_dataset("twitter", scale=min(bench_scale, 0.3))
    sample = breadth_first_sample(
        dataset.graph, target_edges=dataset.graph.num_edges // 4, seed=0
    )
    # samples keep original node ids; relabel to dense 0..n-1 so the CSR
    # backend (and the auto fast path at scale) can freeze the graph
    sample, _mapping = sample.relabeled()
    workload = log_degree_workload(sample, read_write_ratio=2.0)
    ff_cost = schedule_cost(hybrid_schedule(sample, workload), workload)

    def work():
        rows = []

        started = time.perf_counter()
        cc_eager = ChitchatScheduler(sample, workload, backend="dict", lazy=False)
        cc_eager_schedule = cc_eager.run()
        rows.append(
            {
                "algorithm": "ChitChat (eager, dict)",
                "vs hybrid": ff_cost / schedule_cost(cc_eager_schedule, workload),
                "oracle calls": cc_eager.stats.oracle_calls,
                "seconds": round(time.perf_counter() - started, 2),
            }
        )

        started = time.perf_counter()
        cc = ChitchatScheduler(sample, workload, backend="dict")
        cc_schedule = cc.run()
        assert cc_schedule.push == cc_eager_schedule.push
        assert cc_schedule.pull == cc_eager_schedule.pull
        assert cc_schedule.hub_cover == cc_eager_schedule.hub_cover
        rows.append(
            {
                "algorithm": "ChitChat (lazy, dict)",
                "vs hybrid": ff_cost / schedule_cost(cc_schedule, workload),
                "oracle calls": cc.stats.oracle_calls,
                "seconds": round(time.perf_counter() - started, 2),
            }
        )

        started = time.perf_counter()
        cc_csr = ChitchatScheduler(sample, workload, backend="csr")
        cc_csr_schedule = cc_csr.run()
        assert cc_csr_schedule.push == cc_schedule.push
        assert cc_csr_schedule.pull == cc_schedule.pull
        assert cc_csr_schedule.hub_cover == cc_schedule.hub_cover
        rows.append(
            {
                "algorithm": "ChitChat (lazy, CSR)",
                "vs hybrid": ff_cost / schedule_cost(cc_csr_schedule, workload),
                "oracle calls": cc_csr.stats.oracle_calls,
                "seconds": round(time.perf_counter() - started, 2),
            }
        )

        started = time.perf_counter()
        bc_schedule, bc_stats = batched_chitchat_with_stats(sample, workload)
        rows.append(
            {
                "algorithm": "BatchedChitChat (rounds)",
                "vs hybrid": ff_cost / schedule_cost(bc_schedule, workload),
                "oracle calls": bc_stats.oracle_calls,
                "seconds": round(time.perf_counter() - started, 2),
            }
        )

        started = time.perf_counter()
        pn_schedule = parallel_nosy_schedule(sample, workload, max_iterations=10)
        rows.append(
            {
                "algorithm": "ParallelNosy",
                "vs hybrid": ff_cost / schedule_cost(pn_schedule, workload),
                "oracle calls": 0,
                "seconds": round(time.perf_counter() - started, 2),
            }
        )
        return rows

    rows = run_once(benchmark, work)
    print()
    print(format_table(rows, title="E10: scaling CHITCHAT (future work of §4.4)"))

    by_name = {row["algorithm"]: row for row in rows}
    eager = by_name["ChitChat (eager, dict)"]
    cc = by_name["ChitChat (lazy, dict)"]
    bc = by_name["BatchedChitChat (rounds)"]
    # both scaling techniques need far fewer oracle calls than the
    # published eager CHITCHAT while keeping (lazy: exactly, batched:
    # most of) its quality
    assert cc["oracle calls"] < eager["oracle calls"]
    assert bc["oracle calls"] < eager["oracle calls"]
    assert bc["vs hybrid"] >= 0.9 * cc["vs hybrid"]
    assert all(row["vs hybrid"] >= 1.0 - 1e-9 for row in rows)
