"""Shared configuration for the benchmark suite.

Every benchmark regenerates one of the paper's tables/figures at a reduced
scale (see DESIGN.md section 4 for the experiment index) and prints the
resulting series, so a ``pytest benchmarks/ --benchmark-only -s`` run shows
the same rows/curves the paper reports alongside the timing numbers.

``BENCH_SCALE`` can be raised via the ``REPRO_BENCH_SCALE`` environment
variable for higher-fidelity (slower) runs.
"""

from __future__ import annotations

import os

import pytest

#: Dataset scale multiplier used by all figure benchmarks.
BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.25"))


@pytest.fixture(scope="session")
def bench_scale() -> float:
    return BENCH_SCALE


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under the benchmark timer (the harnesses are
    deterministic end-to-end experiments, not microbenchmarks)."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
