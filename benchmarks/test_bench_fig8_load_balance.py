"""E5 / Figure 8 — load balancing: normalized query rate per server.

Paper: both PARALLELNOSY and FF produce well-balanced query loads; the mean
decays as ~1/n and the variance shrinks on larger clusters.
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.experiments.fig8_load_balance import Fig8Config, run


def test_bench_fig8(benchmark, bench_scale):
    config = Fig8Config(scale=bench_scale)
    result = run_once(benchmark, lambda: run(config))
    print()
    print(result.to_text())

    for series in (result.parallelnosy, result.feedingfrenzy):
        means = [r.mean for r in series]
        # mean load decays with cluster size
        assert all(b <= a + 1e-9 for a, b in zip(means, means[1:]))
        # single server takes the whole load
        assert abs(means[0] - 1.0) < 1e-9
        # ~1/n decay: mean at the largest cluster is within 3x of 1/n
        n_last = result.server_counts[-1]
        assert means[-1] <= 3.0 / n_last
    # both schedules reasonably balanced at scale (max/mean bounded)
    for r in (result.parallelnosy[-1], result.feedingfrenzy[-1]):
        assert r.imbalance < 60.0
