"""E14 — vectorized flow kernel vs the PR 3 discharge loop.

ISSUE 4 rewrote ``repro.flow.maxflow``'s pure-Python FIFO discharge as
numpy-vectorized wave passes (descending level sweeps with proportional
batched pushes, segment-minima relabels, vectorized reverse-BFS global
relabeling) and seeded the Dinkelbach density search at the best
single-vertex density.  This bench solves every eligible hub-graph of
the E13 instance exactly under both kernel configurations — the PR 3
reference (loop discharge, full-graph seed, available via
``method="loop"`` / ``seed_lambda=False``) and the new default
(``method="auto"``: wave at or above ``WAVE_AUTO_MIN_ARCS`` forward
arcs, seeded) — and times the factor-2 peel on the same hub-graphs for
the crossover context that justifies raising
``EXACT_AUTO_MAX_ELEMENTS``.

Acceptance (ISSUE 4, at the n≥3000 default-scale instance): the new
kernel is ≥3× faster than the PR 3 loop overall, with identical
selections on every hub.  ``benchmarks/run_benchmarks.py --json``
records the per-tier rows and headline ratios in ``BENCH_chitchat.json``.
"""

from __future__ import annotations

from benchmarks.chitchat_perf import e14_flow_kernel
from benchmarks.conftest import run_once
from repro.analysis.reporting import format_table

#: Acceptance thresholds at the n>=3000 instance (ISSUE 4); smaller quick
#: tiers still must show a real speedup, just with slacker margins.
ACCEPTANCE_NODES = 3000
ACCEPTANCE_SPEEDUP = 3.0
QUICK_TIER_SPEEDUP = 1.5


def test_bench_flow_kernel_speedup(benchmark, bench_scale):
    result = run_once(benchmark, lambda: e14_flow_kernel(bench_scale))
    bar = (
        ACCEPTANCE_SPEEDUP
        if result["nodes"] >= ACCEPTANCE_NODES
        else QUICK_TIER_SPEEDUP
    )
    if result["kernel_speedup"] < bar:
        # wall-clock ratios on loaded shared runners can dip below the
        # gate without any code regression (the local margin is ~4x);
        # one re-measurement separates noise from a real slowdown
        result = e14_flow_kernel(bench_scale)
    print()
    print(
        format_table(
            result["rows"], title="E14: flow kernel, PR 3 loop vs vectorized"
        )
    )
    print(
        f"kernel speedup {result['kernel_speedup']:.2f}x over "
        f"{result['hubs']} hub-graphs; exact oracle at "
        f"{result['exact_vs_peel']:.2f}x the peel's wall-clock"
    )
    # both kernel configurations must agree on every selection — the
    # vectorization and the λ seeding are pure performance changes
    assert result["equal"]
    assert result["kernel_speedup"] >= bar
    if result["nodes"] >= ACCEPTANCE_NODES:
        # the top tier is the regime that motivated the rewrite: the
        # wave discharge must beat the loop by the overall margin too
        top = next(
            (row for row in result["rows"] if row["elements"] == "[1024,inf)"),
            None,
        )
        assert top is not None, "acceptance instance must populate the top tier"
        assert top["speedup"] >= ACCEPTANCE_SPEEDUP
