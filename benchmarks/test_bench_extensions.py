"""E11 — extension analyses grounded in the paper's discussion sections.

1. **Accumulation frontier** (§2.2): asynchronous stores coalesce pushes
   over a period T; cost falls, staleness (Θ = 2Δ + T) rises.  The bench
   sweeps T and prints the frontier plus the heuristic knee.
2. **Partitioning argument** (§4.3): the paper deliberately keeps the
   DISSEMINATION problem placement-agnostic.  The bench measures (a) the
   advantage a placement-aware hybrid extracts at each cluster size —
   which vanishes as servers grow — and (b) what is left of that advantage
   after one re-partitioning — nothing, vindicating the design choice.
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.analysis.partitioning import placement_advantage, repartitioning_penalty
from repro.analysis.reporting import format_table
from repro.core.async_model import frontier, knee_period
from repro.core.baselines import hybrid_schedule  # noqa: F401 (used by E11a)
from repro.core.parallelnosy import parallel_nosy_schedule
from repro.experiments.datasets import load_dataset


def test_bench_accumulation_frontier(benchmark, bench_scale):
    dataset = load_dataset("flickr", scale=min(bench_scale, 0.3))
    graph, workload = dataset.graph, dataset.workload
    schedule = parallel_nosy_schedule(graph, workload, 8)

    def work():
        periods = [0.0, 0.25, 0.5, 1.0, 2.0, 5.0, 15.0]
        points = frontier(schedule, workload, periods, delta=0.05)
        knee = knee_period(schedule, workload, max_period=15.0, delta=0.05)
        return points, knee

    points, knee = run_once(benchmark, work)
    rows = [
        {
            "period": p.period,
            "cost": round(p.cost, 1),
            "staleness bound": p.staleness,
        }
        for p in points
    ]
    print()
    print(format_table(rows, title="E11a: accumulation cost/staleness frontier"))
    print(f"knee period (90% of reduction): {knee:.2f}")

    costs = [p.cost for p in points]
    staleness = [p.staleness for p in points]
    assert all(b <= a + 1e-9 for a, b in zip(costs, costs[1:]))
    assert all(b >= a for a, b in zip(staleness, staleness[1:]))
    assert 0.0 < knee <= 15.0


def test_bench_partitioning_argument(benchmark, bench_scale):
    # Placement knowledge cannot improve *direct* scheduling (co-located
    # edges are free under batching either way) but it can improve *hub
    # selection*: compare placement-aware PARALLELNOSY against the
    # agnostic one across cluster sizes.
    dataset = load_dataset("flickr", scale=min(bench_scale, 0.3))
    graph, workload = dataset.graph, dataset.workload
    agnostic = parallel_nosy_schedule(graph, workload, 10)

    def work():
        rows = []
        for n in (2, 8, 32, 128, 1024):
            adv = placement_advantage(graph, agnostic, workload, n)
            pen = repartitioning_penalty(graph, workload, n, old_seed=0, new_seed=5)
            rows.append(
                {
                    "servers": n,
                    "aware advantage": round(adv.advantage, 4),
                    "after repartition": round(pen.penalty, 4),
                }
            )
        return rows

    rows = run_once(benchmark, work)
    print()
    print(
        format_table(
            rows,
            title="E11b: value of placement-aware hub selection (and its decay)",
        )
    )
    advantages = [row["aware advantage"] for row in rows]
    # placement-aware hub selection helps on small clusters ...
    assert advantages[0] > 1.02
    # ... and its advantage vanishes as servers multiply (§4.3's argument)
    assert advantages[-1] <= advantages[0]
    assert advantages[-1] < 1.02
    # re-partitioning erases the tuning on small clusters (penalty > 1)
    assert rows[0]["after repartition"] > 1.01
