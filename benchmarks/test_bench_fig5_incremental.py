"""E2 / Figure 5 — incremental vs static PARALLELNOSY on a growing graph.

Paper: starting from half the Flickr graph, adding batches of up to ~28 %
of the initial edges, the incremental policy (new edges served directly)
degrades slowly while re-optimizing from scratch holds the ratio — one
re-optimization per ~10⁷ added edges suffices.
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.experiments.fig5_incremental import Fig5Config, run


def test_bench_fig5(benchmark, bench_scale):
    config = Fig5Config(scale=bench_scale, iterations=10)
    result = run_once(benchmark, lambda: run(config))
    print()
    print(result.to_text())

    # static (re-optimized) never loses to incremental at the same batch
    for inc, static in zip(result.incremental, result.static):
        assert inc <= static + 1e-9
    # incremental degrades gently: even after the largest batch it keeps
    # most of the gain it had at the smallest batch
    first, last = result.incremental[0], result.incremental[-1]
    assert last >= 1.0
    assert (last - 1.0) >= 0.5 * (first - 1.0)
    # batch sizes sweep more than an order of magnitude
    assert result.batch_sizes[-1] > 10 * result.batch_sizes[0]
