"""E8 — MapReduce PARALLELNOSY: iteration volumes and cross-edge bound.

Paper section 4.2 reports per-iteration behavior of the Hadoop
implementation: the first iteration is the heaviest and later iterations
shrink as optimization opportunities are consumed; the cross-edge bound
``b`` keeps worker memory bounded at the cost of missed opportunities.
This bench reproduces both effects with the in-process engine's counters
standing in for cluster time.
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.analysis.reporting import format_table
from repro.core.cost import schedule_cost
from repro.experiments.datasets import load_dataset
from repro.mapreduce.engine import MapReduceEngine
from repro.mapreduce.jobs import MapReduceParallelNosy


def test_bench_mapreduce_iterations(benchmark, bench_scale):
    dataset = load_dataset("twitter", scale=min(bench_scale, 0.3))

    def work():
        engine = MapReduceEngine()
        driver = MapReduceParallelNosy(dataset.graph, dataset.workload, engine=engine)
        driver._prepare()
        rows = []
        for iteration in range(1, 9):
            before = engine.total_shuffled_records()
            covered = driver.run_iteration()
            rows.append(
                {
                    "iteration": iteration,
                    "edges_covered": covered,
                    "shuffled_records": engine.total_shuffled_records() - before,
                }
            )
            if covered == 0:
                break
        return driver, rows

    driver, rows = run_once(benchmark, work)
    print()
    print(format_table(rows, title="E8: MapReduce PARALLELNOSY per-iteration volume"))

    # optimization opportunities dry up: the last productive iteration
    # covers far fewer edges than the first
    assert rows[0]["edges_covered"] > 0
    productive = [r["edges_covered"] for r in rows if r["edges_covered"] > 0]
    assert productive[-1] <= productive[0]
    assert driver.stats.hub_graph_records > 0


def test_bench_cross_edge_bound_tradeoff(benchmark, bench_scale):
    dataset = load_dataset("twitter", scale=min(bench_scale, 0.3))

    def work():
        rows = []
        for bound in (2, 8, 64, None):
            driver = MapReduceParallelNosy(
                dataset.graph, dataset.workload, cross_edge_bound=bound
            )
            schedule = driver.run(max_iterations=6)
            rows.append(
                {
                    "bound": "inf" if bound is None else bound,
                    "truncated_hubs": driver.stats.truncated_hubs,
                    "cost": schedule_cost(schedule, dataset.workload),
                }
            )
        return rows

    rows = run_once(benchmark, work)
    print()
    print(format_table(rows, title="E8b: cross-edge bound b vs schedule quality"))

    # tighter bounds truncate more hubs and can only cost more
    assert rows[0]["truncated_hubs"] >= rows[-2]["truncated_hubs"]
    assert rows[-1]["cost"] <= rows[0]["cost"] + 1e-9
