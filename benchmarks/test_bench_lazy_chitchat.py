"""E12 — lazy vs eager oracle re-evaluation in sequential CHITCHAT.

The lazy dirty-hub heap (``repro.core.chitchat``, PR 2) replaces the
eager Algorithm 1 line 14 invalidation — which re-oracles every endpoint
*and every wedge hub* of every covered edge after each selection — with
CELF-style deferred recomputation: stale heap keys are certified lower
bounds on each hub's optimum, so hubs are re-peeled only when they reach
the heap top, and bounded oracle probes abandon non-competitive hubs
after an O(m) pass.

This bench runs both modes on a dense copying-model graph (the regime
where eager invalidation's wedge blow-up dominates) on the CSR backend,
asserts the schedules are byte-identical, and asserts the headline
acceptance ratios at the n=3000 instance (default ``REPRO_BENCH_SCALE``
of 0.25): >= 3x fewer full oracle peels and >= 2x faster wall clock.
Oracle-call counts are deterministic; the wall-clock ratio compares two
interleaved runs on the same machine, so CI noise largely cancels.
"""

from __future__ import annotations

from benchmarks.chitchat_perf import e12_lazy_vs_eager
from benchmarks.conftest import run_once
from repro.analysis.reporting import format_table

#: Acceptance thresholds at the n>=3000 instance (ISSUE 2); smaller quick
#: runs only assert that laziness pays at all.
ACCEPTANCE_NODES = 3000
ACCEPTANCE_CALL_RATIO = 3.0
ACCEPTANCE_WALL_RATIO = 2.0


def test_bench_lazy_chitchat(benchmark, bench_scale):
    result = run_once(benchmark, lambda: e12_lazy_vs_eager(bench_scale))
    print()
    print(format_table(result["rows"], title="E12: lazy vs eager CHITCHAT (CSR)"))
    print(
        f"oracle-call ratio {result['call_ratio']:.2f}x, "
        f"wall-clock ratio {result['wall_ratio']:.2f}x"
    )
    # the lazy heap must reproduce the eager greedy exactly
    assert result["equal"]
    by_mode = {row["mode"]: row for row in result["rows"]}
    assert by_mode["lazy"]["oracle_calls_saved"] > 0
    assert by_mode["lazy"]["oracle_calls"] < by_mode["eager"]["oracle_calls"]
    if result["nodes"] >= ACCEPTANCE_NODES:
        assert result["call_ratio"] >= ACCEPTANCE_CALL_RATIO
        assert result["wall_ratio"] >= ACCEPTANCE_WALL_RATIO
    else:  # quick tier: laziness must still pay, thresholds stay soft
        assert result["call_ratio"] >= 1.1
