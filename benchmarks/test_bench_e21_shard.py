"""E21 — sharded multi-process CHITCHAT over shared-memory slabs (ISSUE 10).

ISSUE 10 added ``repro.shard``: hash-shard the graph by producer into
per-shard CSR slabs in ``multiprocessing.shared_memory``, run one lazy
CHITCHAT per shard in spawn workers (zero-copy attach), merge the
disjoint per-shard schedules, and reconcile boundary hubs with a bounded
sequential fix-up ordered by the workers' CELF-certified bounds.  This
bench prices the two claims that make sharding worthwhile:

* **scale-out** — the sharded run beats the sequential wall
  (``shard_wall_speedup``); the acceptance criterion is >=3x with 4+
  workers on the 10^6-node LDBC-style instance, which only binds when
  the host actually has >=4 usable cores;
* **bounded quality gap** — each worker sees only ``~1/k`` of a
  cross-shard element's wedge hubs, so the sharded cost trails the
  sequential one; the gap (``shard_cost_ratio``) is reported in the
  JSON as data and must stay within 1.05x at acceptance scale.

Quick tiers keep the cost-quality and feasibility invariants (the gap is
CPU-independent) and report the speedup without gating on it.
"""

from __future__ import annotations

from benchmarks.chitchat_perf import E21_NUM_SHARDS, e21_shard
from benchmarks.conftest import run_once
from repro.analysis.reporting import format_table

#: Acceptance thresholds (ISSUE 10): the paper-scale 10^6-node instance
#: with at least 4 usable cores must show a >=3x wall speedup and a cost
#: gap within 1.05x.  Quick tiers keep the quality bar (slightly widened
#: for greedy path-dependence on small instances) and always require
#: feasibility; the speedup is reported, not gated, below acceptance
#: scale or on narrow hosts.
ACCEPTANCE_NODES = 1_000_000
ACCEPTANCE_CORES = 4
ACCEPTANCE_SPEEDUP = 3.0
ACCEPTANCE_COST_RATIO = 1.05
QUICK_TIER_COST_RATIO = 1.10


def test_bench_sharded_vs_sequential(benchmark, bench_scale):
    result = run_once(benchmark, lambda: e21_shard(bench_scale))
    print()
    print(
        format_table(
            result["rows"],
            title=f"E21: sharded x{E21_NUM_SHARDS} vs sequential CHITCHAT",
        )
    )
    print(
        f"speedup {result['shard_wall_speedup']:.2f}x on "
        f"{result['workers']} workers ({result['cores']} cores), "
        f"cost ratio {result['shard_cost_ratio']:.4f} "
        f"(merged {result['merged_cost_ratio']:.4f}), "
        f"cut fraction {result['cut_fraction']:.3f}, "
        f"recovered {result['elements_recovered']} elements over "
        f"{result['boundary_hubs']} boundary hubs"
    )
    # both the sequential and the sharded schedule passed strict
    # Theorem-1 coverage validation inside the collector
    assert result["feasible"]
    # reconciliation is monotone: merged cost can only come down
    assert result["shard_cost_ratio"] <= result["merged_cost_ratio"] + 1e-9
    acceptance = result["nodes"] >= ACCEPTANCE_NODES
    cost_bar = ACCEPTANCE_COST_RATIO if acceptance else QUICK_TIER_COST_RATIO
    assert result["shard_cost_ratio"] <= cost_bar
    if acceptance and result["cores"] >= ACCEPTANCE_CORES:
        assert result["shard_wall_speedup"] >= ACCEPTANCE_SPEEDUP
