"""E9 — ablations of the design choices DESIGN.md calls out.

1. workload model: piggybacking gains depend on the degree-rate correlation
   (log-degree vs uniform vs shuffled-Zipf rates);
2. PARALLELNOSY's producer cap (the in-memory analogue of the MapReduce
   cross-edge bound);
3. cleanup pass: how much redundancy the paper's algorithms leave behind;
4. graph structure: gains on a clustered copying graph vs a degree-matched
   random graph (clustering is the resource piggybacking consumes).
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.analysis.reporting import format_table
from repro.core.baselines import hybrid_schedule
from repro.core.cost import schedule_cost
from repro.core.parallelnosy import parallel_nosy_schedule
from repro.core.pruning import cleanup_schedule
from repro.experiments.datasets import load_dataset
from repro.graph.generators import erdos_renyi_graph
from repro.workload.rates import log_degree_workload, uniform_workload, zipf_workload


def _ratio(graph, workload, **kwargs) -> float:
    pn = parallel_nosy_schedule(graph, workload, max_iterations=10, **kwargs)
    ff = hybrid_schedule(graph, workload)
    return schedule_cost(ff, workload) / schedule_cost(pn, workload)


def test_bench_workload_model_ablation(benchmark, bench_scale):
    dataset = load_dataset("flickr", scale=min(bench_scale, 0.3))
    graph = dataset.graph

    def work():
        return [
            {"workload": "log-degree", "pn_ratio": _ratio(graph, dataset.workload)},
            {
                "workload": "uniform",
                "pn_ratio": _ratio(graph, uniform_workload(graph, 1.0, 5.0)),
            },
            {
                "workload": "zipf (degree-uncorrelated)",
                "pn_ratio": _ratio(graph, zipf_workload(graph, 5.0, seed=0)),
            },
        ]

    rows = run_once(benchmark, work)
    print()
    print(format_table(rows, title="E9a: workload-model ablation"))
    assert all(row["pn_ratio"] >= 1.0 - 1e-9 for row in rows)


def test_bench_producer_cap_ablation(benchmark, bench_scale):
    dataset = load_dataset("flickr", scale=min(bench_scale, 0.3))

    def work():
        rows = []
        for cap in (1, 2, 8, None):
            ratio = _ratio(
                dataset.graph, dataset.workload, max_candidate_producers=cap
            )
            rows.append({"producer_cap": "inf" if cap is None else cap, "pn_ratio": ratio})
        return rows

    rows = run_once(benchmark, work)
    print()
    print(format_table(rows, title="E9b: PARALLELNOSY producer-cap ablation"))
    # loosening the cap can only help
    values = [row["pn_ratio"] for row in rows]
    assert values[-1] >= values[0] - 1e-9


def test_bench_cleanup_ablation(benchmark, bench_scale):
    dataset = load_dataset("flickr", scale=min(bench_scale, 0.3))
    graph, workload = dataset.graph, dataset.workload

    def work():
        pn = parallel_nosy_schedule(graph, workload, max_iterations=10)
        cleaned = cleanup_schedule(graph, pn, workload)
        return schedule_cost(pn, workload), schedule_cost(cleaned, workload)

    raw, cleaned = run_once(benchmark, work)
    print()
    print(f"E9c: PARALLELNOSY cost raw={raw:.1f} cleaned={cleaned:.1f} "
          f"(reduction {100 * (raw - cleaned) / raw:.2f}%)")
    assert cleaned <= raw + 1e-9
    # the paper's gain accounting leaves little on the table
    assert (raw - cleaned) / raw < 0.05


def test_bench_clustering_dependence(benchmark, bench_scale):
    dataset = load_dataset("flickr", scale=min(bench_scale, 0.3))
    clustered = dataset.graph

    def work():
        random_graph = erdos_renyi_graph(
            clustered.num_nodes, clustered.num_edges, seed=1
        )
        return {
            "clustered": _ratio(clustered, log_degree_workload(clustered)),
            "random": _ratio(random_graph, log_degree_workload(random_graph)),
        }

    ratios = run_once(benchmark, work)
    print()
    print(
        "E9d: PN improvement on clustered vs degree-matched random graph: "
        f"{ratios['clustered']:.3f} vs {ratios['random']:.3f}"
    )
    # clustering is what piggybacking consumes: the clustered graph must
    # show a clearly larger gain than the triangle-free random graph
    assert ratios["clustered"] > ratios["random"] + 0.05
