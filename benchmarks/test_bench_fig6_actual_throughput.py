"""E3 / Figure 6 — actual per-client throughput of the prototype.

Paper: per-client throughput decreases with cluster size for both
schedules; FF ties/wins on small clusters, PARALLELNOSY wins past a
crossover (~200 servers on their workload; earlier here because the graph
is smaller), with the ratio growing toward the placement-free factor.
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.experiments.fig6_actual_throughput import Fig6Config, run


def test_bench_fig6(benchmark, bench_scale):
    config = Fig6Config(
        scale=bench_scale,
        num_requests=12_000,
        server_counts=(1, 2, 5, 10, 20, 50, 100, 200, 500, 1000),
    )
    result = run_once(benchmark, lambda: run(config))
    print()
    print(result.to_text())

    pn = [m.requests_per_second for m in result.parallelnosy]
    ff = [m.requests_per_second for m in result.feedingfrenzy]
    # absolute per-client throughput decays with cluster size
    assert pn[0] >= pn[-1] and ff[0] >= ff[-1]
    # parity on one server (every request is one message either way)
    assert abs(result.ratio[0] - 1.0) < 1e-6
    # a crossover exists: PN behind (or tied) early, ahead at full scale
    assert min(result.ratio) <= 1.0 + 1e-6
    assert result.ratio[-1] > 1.1
    # the improvement ratio trend is upward over the sweep
    assert result.ratio[-1] >= max(result.ratio[:3])
