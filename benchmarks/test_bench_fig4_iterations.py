"""E1 / Figure 4 — predicted improvement ratio of PARALLELNOSY per iteration.

Paper: both full graphs climb sharply in early iterations and saturate
(flickr ~1.9, twitter ~2.2), twitter above flickr.  At this reproduction's
scale the saturation levels are lower (gains grow with hub sizes, see
EXPERIMENTS.md) but the shape — monotone rise, early saturation, twitter
above flickr — must hold.
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.experiments.fig4_iterations import Fig4Config, run


def test_bench_fig4(benchmark, bench_scale):
    config = Fig4Config(scale=bench_scale, iterations=12)
    result = run_once(benchmark, lambda: run(config))
    print()
    print(result.to_text())

    for name, series in result.ratios.items():
        # monotone non-decreasing
        assert all(b >= a - 1e-9 for a, b in zip(series, series[1:])), name
        # meaningful improvement over FF by the last iteration
        assert series[-1] > 1.1, name
        # most of the gain arrives in the first half of the iterations
        half = series[len(series) // 2]
        assert (half - 1.0) >= 0.55 * (series[-1] - 1.0), name
    assert result.final_ratio["twitter"] > result.final_ratio["flickr"]
