"""Setup shim for environments without the `wheel` package.

The project is fully described by pyproject.toml; this file only enables
legacy `pip install -e . --no-use-pep517` installs on offline machines.
"""

from setuptools import setup

setup()
